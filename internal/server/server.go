package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/g-rpqs/rlc-go/internal/automaton"
	"github.com/g-rpqs/rlc-go/internal/core"
	"github.com/g-rpqs/rlc-go/internal/dynamic"
	"github.com/g-rpqs/rlc-go/internal/graph"
	"github.com/g-rpqs/rlc-go/internal/hybrid"
	"github.com/g-rpqs/rlc-go/internal/labelseq"
	"github.com/g-rpqs/rlc-go/internal/snapshot"
)

// Default sizing for the zero-value Options.
const (
	// DefaultCacheEntries is the result-cache capacity when
	// Options.CacheEntries is zero: 64Ki answers at ~tens of bytes each.
	DefaultCacheEntries = 1 << 16
	// DefaultMaxBatch bounds a single POST /batch request.
	DefaultMaxBatch = 8192
	// DefaultMaxBodyBytes caps JSON request bodies (POST /update, /batch)
	// when Options.MaxBodyBytes is zero: 8 MiB holds the largest legal
	// batch with generous headroom while bounding what one connection can
	// make the decoder buffer.
	DefaultMaxBodyBytes = 8 << 20
)

// Options configures a Server. The zero value serves with a default-sized
// cache, GOMAXPROCS batch workers, and the default batch size limit.
type Options struct {
	// CacheEntries is the total result-cache capacity across all shards.
	// Zero selects DefaultCacheEntries; negative disables the cache (every
	// request goes to the index — the bench "serve" experiment's baseline).
	CacheEntries int

	// CacheShards is the number of independently locked cache shards,
	// rounded up to a power of two. Zero selects 2*GOMAXPROCS (rounded).
	CacheShards int

	// BatchWorkers is the worker count handed to Index.QueryBatchIntoCtx
	// for POST /batch requests; 0 means GOMAXPROCS.
	BatchWorkers int

	// MaxBatch caps the number of queries accepted in one POST /batch
	// request; zero selects DefaultMaxBatch.
	MaxBatch int

	// BuildStats, when non-nil, is reported verbatim under "build" in
	// /stats — wire it up when the index was built on startup. It describes
	// the initial generation only; reloaded snapshots carry no build stats.
	BuildStats *core.BuildStats

	// SnapshotSource, when non-nil, produces the replacement snapshot for
	// POST /reload and Server.Reload — typically by re-opening (and
	// verifying) the bundle path the server was started from, which is
	// exactly what rlcserve wires here. When nil, reloading is disabled
	// and POST /reload answers 501. Mutable servers reject reloads
	// outright (an external bundle would silently drop journal edges);
	// they evolve through folds instead.
	SnapshotSource func() (*core.Snapshot, error)

	// Mutable enables the write path: POST /update (and UpdateBatch)
	// append edges to a per-generation delta overlay that every query
	// consults, exactly and without blocking, and folds rebuild the base
	// in the background (rlcserve -mutable).
	Mutable bool

	// RebuildThreshold is the journal length at which an update triggers
	// a background fold-and-rebuild. Zero selects
	// dynamic.DefaultRebuildThreshold; negative disables automatic folds
	// (POST /rebuild, Server.Rebuild, or SIGUSR1 in rlcserve still fold
	// on demand). Ignored unless Mutable.
	RebuildThreshold int

	// RebuildPath, when non-empty, makes every fold write a fresh v2
	// snapshot bundle there (SaveSnapshotFile), re-open and verify it,
	// and hot-swap the server onto the mapped bundle; when empty, folds
	// swap in the heap-built index directly. Ignored unless Mutable.
	RebuildPath string

	// RebuildWorkers is the construction worker count for fold rebuilds
	// (0 = GOMAXPROCS). The parallel build is deterministic, so the
	// folded index is identical for every setting. Ignored unless
	// Mutable.
	RebuildWorkers int

	// OnRebuild, when non-nil, observes every completed fold — background
	// and explicit, including failed ones (Err set). It runs on the
	// folding goroutine after the swap; keep it quick.
	OnRebuild func(RebuildResult)

	// MaxBodyBytes caps the accepted request body, in bytes, on the JSON
	// POST endpoints (/update, /batch). Zero selects DefaultMaxBodyBytes;
	// negative disables the cap. Oversized bodies are cut off mid-read and
	// rejected with HTTP 413 and code "body_too_large".
	MaxBodyBytes int64

	// Role names this server's replication role — "leader", "follower",
	// or "" (reported as "standalone") — in /healthz and the replication
	// handshake. A follower rejects client-originated writes over HTTP:
	// POST /update and /rebuild answer 403 with code "not_leader", because
	// its graph must evolve only through the replication apply path
	// (UpdateBatch and AdoptFolded driven by the cluster follower loop).
	Role string
}

func (o Options) withDefaults() Options {
	if o.CacheEntries == 0 {
		o.CacheEntries = DefaultCacheEntries
	}
	if o.CacheShards <= 0 {
		o.CacheShards = 2 * runtime.GOMAXPROCS(0)
	}
	o.CacheShards = nextPow2(o.CacheShards)
	if o.MaxBatch <= 0 {
		o.MaxBatch = DefaultMaxBatch
	}
	if o.MaxBodyBytes == 0 {
		o.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if o.Mutable && o.RebuildThreshold == 0 {
		o.RebuildThreshold = dynamic.DefaultRebuildThreshold
	}
	return o
}

// maxCacheShards bounds the shard count: far above any real contention need,
// and it keeps the power-of-two rounding below from overflowing on absurd
// operator input.
const maxCacheShards = 1 << 16

func nextPow2(v int) int {
	if v > maxCacheShards {
		return maxCacheShards
	}
	p := 1
	for p < v {
		p <<= 1
	}
	return p
}

// Server answers RLC reachability queries over HTTP. All serving state —
// index, graph, result cache, hybrid-evaluator pool — lives in a Store
// generation that every request pins for its own lifetime, so the served
// snapshot can be hot-swapped (SIGHUP / POST /reload in rlcserve) with zero
// downtime: in-flight queries finish against the generation they started
// on, new queries see the new one, and the old bundle's mapping is released
// only after the last straggler drains.
type Server struct {
	store *Store
	opts  Options
	start time.Time

	// swapMu serializes every generation swap — reloads and folds — so two
	// swappers cannot interleave open/build-then-swap and leak a snapshot.
	swapMu sync.Mutex

	// updateMu serializes writers with the fold's install step: an update
	// appends to the pinned generation's overlay under it, and a fold
	// holds it only while carrying the journal tail into the next
	// generation — so no insert can slip between the carry-over and the
	// swap and be lost. The read path never takes it.
	updateMu sync.Mutex

	// rebuilding dedups background fold goroutines; epoch counts
	// completed folds across all generations.
	rebuilding    atomic.Bool
	epoch         atomic.Uint64
	lastRebuildUS atomic.Int64
	lastRebuildEr atomic.Pointer[string]

	// batchBufs pools []core.BatchResult buffers so a steady stream of
	// POST /batch requests goes through QueryBatchIntoCtx without
	// allocating a result slice per request.
	batchBufs sync.Pool

	mQuery   histogram
	mBatch   histogram
	mStats   histogram
	mHealthz histogram
	mReload  histogram
	mUpdate  histogram
	mRebuild histogram

	// hs is created eagerly so a Shutdown that races ahead of Serve still
	// marks the server closed (Serve then returns http.ErrServerClosed,
	// matching the net/http contract) instead of silently no-opping.
	hs *http.Server
}

// New returns a Server over a heap-built index.
func New(ix *core.Index, opts Options) *Server {
	return newServer(NewStore(ix, opts), opts)
}

// NewFromSnapshot returns a Server over an open snapshot bundle, taking
// ownership of it: the bundle is closed when it is swapped out by a reload
// or when the server is Closed.
func NewFromSnapshot(snap *core.Snapshot, opts Options) *Server {
	return newServer(NewStoreFromSnapshot(snap, opts), opts)
}

func newServer(store *Store, opts Options) *Server {
	s := &Server{
		store: store,
		opts:  opts.withDefaults(),
		start: time.Now(),
	}
	s.hs = &http.Server{Handler: s.Handler()}
	return s
}

// Store exposes the server's generation store — the hot-swap surface used
// by embedding programs and tests.
func (s *Server) Store() *Store { return s.store }

// Reload obtains a fresh snapshot from Options.SnapshotSource and swaps it
// in, returning the new generation. In-flight queries keep the old
// generation until they finish; a failed source leaves the server on its
// current generation.
func (s *Server) Reload() (uint64, error) {
	if s.opts.Mutable {
		return 0, errors.New("server: mutable servers do not reload external bundles (journal edges would be dropped); fold with Rebuild instead")
	}
	if s.opts.SnapshotSource == nil {
		return 0, errors.New("server: no snapshot source configured; start from a bundle to enable reloads")
	}
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	snap, err := s.opts.SnapshotSource()
	if err != nil {
		return 0, fmt.Errorf("server: reload: %w", err)
	}
	s.store.SwapSnapshot(snap)
	return s.store.Generation(), nil
}

// Handler returns the HTTP handler serving all endpoints:
//
//	GET  /query?s=&t=&l=   one query; l is an expression ("(l0 l1)+", "a+ b+")
//	POST /batch            {"queries":[{"s":0,"t":4,"l":"l0 l1"},...]}
//	POST /update           mutable servers: insert edges ({"s":0,"l":"l1","t":4} or {"edges":[...]})
//	POST /rebuild          mutable servers: fold the journal into a rebuilt base, synchronously
//	POST /reload           hot-swap the serving snapshot (immutable servers, when configured)
//	GET  /stats            cache, latency, index, build, and write-path statistics
//	GET  /healthz          liveness, with the serving generation and (mutable) epoch/journal
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /query", s.timed(&s.mQuery, s.handleQuery))
	mux.HandleFunc("POST /batch", s.timed(&s.mBatch, s.handleBatch))
	mux.HandleFunc("POST /update", s.timed(&s.mUpdate, s.handleUpdate))
	mux.HandleFunc("POST /rebuild", s.timed(&s.mRebuild, s.handleRebuild))
	mux.HandleFunc("POST /reload", s.timed(&s.mReload, s.handleReload))
	mux.HandleFunc("GET /stats", s.timed(&s.mStats, s.handleStats))
	mux.HandleFunc("GET /healthz", s.timed(&s.mHealthz, s.handleHealthz))
	return mux
}

// Serve accepts connections on ln until Shutdown. It returns
// http.ErrServerClosed after a clean shutdown, like net/http.
func (s *Server) Serve(ln net.Listener) error {
	return s.hs.Serve(ln)
}

// ListenAndServe listens on addr and calls Serve.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Shutdown stops accepting new connections and waits for in-flight requests
// to complete, like net/http.Server.Shutdown. Calling it before Serve marks
// the server closed, so a later Serve returns http.ErrServerClosed. It does
// not release the serving snapshot; call Close once no more queries will
// arrive.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.hs.Shutdown(ctx)
}

// Close retires the serving generation and releases its backing snapshot
// (once in-flight queries drain). Queries after Close fail; call it after
// Shutdown.
func (s *Server) Close() error {
	return s.store.Close()
}

// CacheStats snapshots the current generation's result-cache counters (the
// zero value when the cache is disabled or the server is closed).
func (s *Server) CacheStats() CacheStats {
	st := s.store.acquire()
	if st == nil {
		return CacheStats{}
	}
	defer st.release()
	if st.cache == nil {
		return CacheStats{}
	}
	return st.cache.stats()
}

// errServerClosed is returned to queries arriving after Close.
var errServerClosed = errors.New("server: closed")

// AnswerRLC answers one (s, t, L+) query through the serving path — cache,
// singleflight, then index (or the traversal fallback when L is outside the
// index's class) — without the HTTP layer. cached reports a cache hit. The
// bench "serve" experiment uses it to measure the serving layer itself
// rather than the HTTP stack; a cache hit costs one packed-key probe and no
// allocation.
func (s *Server) AnswerRLC(ctx context.Context, src, dst graph.Vertex, l labelseq.Seq) (reachable, cached bool, err error) {
	st := s.store.acquire()
	if st == nil {
		return false, false, errServerClosed
	}
	defer st.release()
	return st.answerRLC(ctx, src, dst, l)
}

// QueryRLC answers one (s, t, L+) query through the serving path,
// satisfying the facade's Querier interface.
func (s *Server) QueryRLC(ctx context.Context, src, dst graph.Vertex, l labelseq.Seq) (bool, error) {
	ok, _, err := s.AnswerRLC(ctx, src, dst, l)
	return ok, err
}

// answerRLC is AnswerRLC against one pinned generation. The cache version
// is read once at entry: any answer computed under it corresponds to a
// graph state within this request's window, so serving it (or stamping it
// into the cache) is linearizable even as inserts land concurrently.
//
// The function is annotated noalloc for its hit path: a resident answer
// costs one packed-key probe and nothing else. The detached context and
// compute closure — both heap allocations — are built only after the probe
// misses, on the lines waived below.
//
//rlc:noalloc
func (st *state) answerRLC(ctx context.Context, src, dst graph.Vertex, l labelseq.Seq) (reachable, cached bool, err error) {
	if st.cache == nil {
		reachable, err = st.computeSeq(ctx, src, dst, l) //rlc:allocok uncached configuration, not the serving hot path
		return reachable, false, err
	}
	ver := st.ver.Load()
	key := st.seqKey(src, dst, l)
	if val, ok := st.cache.hitProbe(key, ver); ok {
		return val, true, nil
	}
	// Miss: compute through the singleflight. A flight's result is broadcast
	// to every coalesced waiter, so the leader must not abort on its own
	// client's disconnect — that would fail healthy waiters with a spurious
	// "canceled". Compute detached; the answer also warms the cache for the
	// next request.
	dctx := context.WithoutCancel(ctx)                                          //rlc:allocok miss path: detached context outlives the request
	compute := func() (bool, error) { return st.computeSeq(dctx, src, dst, l) } //rlc:allocok miss path: closure handed to the singleflight
	return st.cache.do(key, ver, compute)                                       //rlc:allocok miss path: flight bookkeeping allocates
}

// computeSeq answers (src, dst, l+) on a cache miss. Immutable generations
// (and mutable ones with an empty journal — checking emptiness first is a
// valid linearization point) go straight to the base: Index.Query when the
// constraint is in the index's class, the pooled hybrid evaluator (which
// falls back to NFA-guided traversal) otherwise. With journal edges
// pending, the delta overlay answers: the index-accelerated delta search
// for index-class constraints, the NFA product search over the union for
// the rest.
func (st *state) computeSeq(ctx context.Context, src, dst graph.Vertex, l labelseq.Seq) (bool, error) {
	indexClass := len(l) > 0 && len(l) <= st.ix.K() && labelseq.IsPrimitive(l)
	if st.delta != nil && st.delta.JournalLen() > 0 {
		if indexClass {
			return st.delta.QueryRLC(ctx, src, dst, l)
		}
		return st.delta.EvalExprCtx(ctx, src, dst, automaton.Plus(l))
	}
	if indexClass {
		return st.ix.QueryRLC(ctx, src, dst, l)
	}
	h := st.hybrids.Get().(*hybrid.Evaluator)
	defer st.hybrids.Put(h)
	return h.EvalCtx(ctx, src, dst, automaton.Plus(l))
}

// seqKey builds the cache key of a single-L+ query: the packed sequence code
// when it fits, the canonical expression text otherwise.
//
//rlc:noalloc
func (st *state) seqKey(src, dst graph.Vertex, l labelseq.Seq) cacheKey {
	if code, ok := st.packSeq(l); ok {
		return cacheKey{s: int32(src), t: int32(dst), code: code}
	}
	//rlc:allocok overflow fallback: sequences past 63 bits key by canonical text
	return cacheKey{s: int32(src), t: int32(dst), expr: canonicalExpr(automaton.Plus(l))}
}

// packSeq packs l into the base-(numLabels+1) code cacheKey uses, refusing
// sequences that overflow 63 bits or carry out-of-range labels (both are
// answered — and rejected — downstream; they just can't use the packed key).
//
//rlc:noalloc
func (st *state) packSeq(l labelseq.Seq) (uint64, bool) {
	base := uint64(st.g.NumLabels() + 1)
	var code uint64
	for _, lb := range l {
		if lb < 0 || uint64(lb+1) >= base || code > (1<<63)/base {
			return 0, false
		}
		code = code*base + uint64(lb+1)
	}
	return code, true
}

// answerExpr answers a parsed expression through the cache. Single
// plus-segment expressions take the packed-key path; multi-segment
// expressions are keyed by canonical text and computed by a pooled hybrid
// evaluator.
func (st *state) answerExpr(ctx context.Context, src, dst graph.Vertex, e automaton.Expr) (reachable, cached bool, err error) {
	if len(e.Segments) == 1 && e.Segments[0].Plus {
		return st.answerRLC(ctx, src, dst, e.Segments[0].Labels)
	}
	if st.cache == nil {
		reachable, err = st.computeExpr(ctx, src, dst, e)
		return reachable, false, err
	}
	ver := st.ver.Load()
	key := cacheKey{s: int32(src), t: int32(dst), expr: canonicalExpr(e)}
	if val, ok := st.cache.hitProbe(key, ver); ok {
		return val, true, nil
	}
	// Detached for the same reason as answerRLC: coalesced waiters share
	// the leader's result. Built only on a miss — a hit pays for the key's
	// canonical text and nothing else.
	dctx := context.WithoutCancel(ctx)
	compute := func() (bool, error) { return st.computeExpr(dctx, src, dst, e) }
	return st.cache.do(key, ver, compute)
}

// computeExpr answers a multi-segment expression on a cache miss: the delta
// overlay's exact NFA search when journal edges are pending, the pooled
// hybrid evaluator over the base otherwise.
func (st *state) computeExpr(ctx context.Context, src, dst graph.Vertex, e automaton.Expr) (bool, error) {
	if st.delta != nil && st.delta.JournalLen() > 0 {
		return st.delta.EvalExprCtx(ctx, src, dst, e)
	}
	h := st.hybrids.Get().(*hybrid.Evaluator)
	defer st.hybrids.Put(h)
	return h.EvalCtx(ctx, src, dst, e)
}

// canonicalExpr renders a parsed expression so that every spelling of the
// same query shares one cache key; automaton.Expr.String is injective over
// the parsed form, so it is the canonical encoding.
func canonicalExpr(e automaton.Expr) string {
	return e.String()
}

// parseExpr resolves an expression with the shared graph-aware rules
// (automaton.ParseForGraph — the same resolver as the rlc facade and CLIs)
// plus one serving-layer convenience: an expression with no '+' anywhere
// ("l0 l1") is read as the single RLC constraint (l0 l1)+, so query URLs
// don't need to escape parentheses for the common case.
func (st *state) parseExpr(text string) (automaton.Expr, error) {
	e, err := automaton.ParseForGraph(text, st.g)
	if err != nil {
		return automaton.Expr{}, err
	}
	for _, seg := range e.Segments {
		if seg.Plus {
			return e, nil
		}
	}
	var all labelseq.Seq
	for _, seg := range e.Segments {
		all = append(all, seg.Labels...)
	}
	return automaton.Plus(all), nil
}

// vertex resolves a vertex token: a numeric id first (O(1), the hot case for
// programmatic clients), then a display-name scan. Range violations wrap
// the same typed sentinel Index.Query uses, so HTTP clients see one stable
// error code for them.
func (st *state) vertex(tok string) (graph.Vertex, error) {
	if id, err := strconv.Atoi(tok); err == nil {
		if id < 0 || id >= st.g.NumVertices() {
			return 0, fmt.Errorf("%w: vertex %d out of range [0, %d)", core.ErrVertexRange, id, st.g.NumVertices())
		}
		return graph.Vertex(id), nil
	}
	if v, ok := st.g.VertexByName(tok); ok {
		return v, nil
	}
	return 0, fmt.Errorf("unknown vertex %q", tok)
}

// timed wraps a handler with its endpoint histogram.
func (s *Server) timed(h *histogram, fn func(http.ResponseWriter, *http.Request) bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		ok := fn(w, r)
		h.observe(time.Since(start), !ok)
	}
}

// queryResponse is the GET /query reply.
type queryResponse struct {
	S         string  `json:"s"`
	T         string  `json:"t"`
	L         string  `json:"l"`
	Reachable bool    `json:"reachable"`
	Cached    bool    `json:"cached"`
	Micros    float64 `json:"micros"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) bool {
	st := s.store.acquire()
	if st == nil {
		return writeError(w, http.StatusServiceUnavailable, "server closed")
	}
	defer st.release()
	q := r.URL.Query()
	sTok, tTok, lTok := q.Get("s"), q.Get("t"), q.Get("l")
	if sTok == "" || tTok == "" || lTok == "" {
		return writeError(w, http.StatusBadRequest, "missing parameter: s, t, and l are all required")
	}
	src, err := st.vertex(sTok)
	if err != nil {
		return writeErr(w, http.StatusBadRequest, fmt.Errorf("s: %w", err))
	}
	dst, err := st.vertex(tTok)
	if err != nil {
		return writeErr(w, http.StatusBadRequest, fmt.Errorf("t: %w", err))
	}
	e, err := st.parseExpr(lTok)
	if err != nil {
		return writeErr(w, http.StatusBadRequest, fmt.Errorf("l: %w", err))
	}

	start := time.Now()
	// Coordinates are captured before the answer is computed, so the seq
	// header is a floor the answer provably reflects (inserts are
	// monotone: later edges can only add reachability the claim omits).
	replHeaders(w, st, st.seqNow())
	reachable, cached, err := st.answerExpr(r.Context(), src, dst, e)
	if err != nil {
		return writeErr(w, http.StatusUnprocessableEntity, err)
	}
	return writeJSON(w, http.StatusOK, queryResponse{
		S:         sTok,
		T:         tTok,
		L:         lTok,
		Reachable: reachable,
		Cached:    cached,
		Micros:    float64(time.Since(start).Nanoseconds()) / 1e3,
	})
}

// batchRequest is the POST /batch body. Each query's constraint must be a
// single L+ segment (the class Index.QueryBatch answers); s and t accept
// numeric ids or display names.
type batchRequest struct {
	// Workers overrides the server's batch worker count for this request
	// (0 = server default). QueryBatch clamps any value to the available
	// work, so a hostile request cannot spawn unbounded goroutines.
	Workers int               `json:"workers,omitempty"`
	Queries []batchQueryInput `json:"queries"`
}

type batchQueryInput struct {
	S vertexToken `json:"s"`
	T vertexToken `json:"t"`
	L string      `json:"l"`
}

// vertexToken accepts a vertex as a JSON number (35) or string ("A14"),
// normalizing both to the token the vertex resolver takes.
type vertexToken string

func (v *vertexToken) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		*v = vertexToken(s)
		return nil
	}
	*v = vertexToken(b)
	return nil
}

// batchQueryResult is one slot of the POST /batch reply; Error (and its
// machine-readable Code) is set — and Reachable false — when that query
// failed validation.
type batchQueryResult struct {
	Reachable bool   `json:"reachable"`
	Error     string `json:"error,omitempty"`
	Code      string `json:"code,omitempty"`
}

type batchResponse struct {
	Results []batchQueryResult `json:"results"`
	Count   int                `json:"count"`
	Cached  int                `json:"cached"`
	Micros  float64            `json:"micros"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) bool {
	st := s.store.acquire()
	if st == nil {
		return writeError(w, http.StatusServiceUnavailable, "server closed")
	}
	defer st.release()
	// Same pre-compute capture as /query: every per-query answer below is
	// computed at or after this point, so the floor holds for all of them.
	replHeaders(w, st, st.seqNow())
	s.limitBody(w, r)
	var req batchRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return writeErr(w, http.StatusRequestEntityTooLarge, err)
		}
		return writeError(w, http.StatusBadRequest, "decode request: %v", err)
	}
	if len(req.Queries) == 0 {
		return writeError(w, http.StatusBadRequest, "empty batch")
	}
	if len(req.Queries) > s.opts.MaxBatch {
		return writeError(w, http.StatusRequestEntityTooLarge,
			"batch of %d queries exceeds the limit of %d", len(req.Queries), s.opts.MaxBatch)
	}
	workers := s.opts.BatchWorkers
	if req.Workers > 0 && (workers <= 0 || req.Workers < workers) {
		workers = req.Workers
	}

	start := time.Now()
	resp := batchResponse{
		Results: make([]batchQueryResult, len(req.Queries)),
		Count:   len(req.Queries),
	}

	// The cache version is read before the journal-emptiness check: if an
	// insert lands after the check, answers computed from the base alone
	// carry a stamp older than the insert's bump and are never served to
	// later requests.
	var ver uint64
	if st.delta != nil {
		ver = st.ver.Load()
	}

	// Generations with pending journal edges answer each query through the
	// full serving path (cache, singleflight, delta overlay): the
	// worker-pool fan-out below reads the base index only and would miss
	// journal edges. With an empty journal the pool path is exact — the
	// emptiness check is a valid linearization point — so read-mostly
	// mutable servers keep the fan-out.
	if st.delta != nil && st.delta.JournalLen() > 0 {
		for i, in := range req.Queries {
			src, dst, l, err := st.resolveBatchQuery(in)
			if err != nil {
				resp.Results[i] = batchQueryResult{Error: err.Error(), Code: errorCode(err)}
				continue
			}
			reachable, cached, err := st.answerRLC(r.Context(), src, dst, l)
			if err != nil {
				resp.Results[i] = batchQueryResult{Error: err.Error(), Code: errorCode(err)}
				continue
			}
			resp.Results[i] = batchQueryResult{Reachable: reachable}
			if cached {
				resp.Cached++
			}
		}
		resp.Micros = float64(time.Since(start).Nanoseconds()) / 1e3
		return writeJSON(w, http.StatusOK, resp)
	}

	// Resolve every query, peel off cache hits, and collect the misses
	// into one sub-batch for the worker pool.
	type miss struct {
		pos int
		key cacheKey
	}
	var (
		misses  []miss
		pending []core.BatchQuery
	)
	for i, in := range req.Queries {
		src, dst, l, err := st.resolveBatchQuery(in)
		if err != nil {
			resp.Results[i] = batchQueryResult{Error: err.Error(), Code: errorCode(err)}
			continue
		}
		key := st.seqKey(src, dst, l)
		if st.cache != nil {
			if val, ok := st.cache.get(key, ver); ok {
				resp.Results[i] = batchQueryResult{Reachable: val}
				resp.Cached++
				continue
			}
		}
		misses = append(misses, miss{pos: i, key: key})
		pending = append(pending, core.BatchQuery{S: src, T: dst, L: l})
	}

	if len(pending) > 0 {
		bufp, _ := s.batchBufs.Get().(*[]core.BatchResult)
		if bufp == nil {
			bufp = new([]core.BatchResult)
		}
		*bufp = st.ix.QueryBatchIntoCtx(r.Context(), pending, workers, *bufp)
		for j, res := range *bufp {
			m := misses[j]
			if res.Err != nil {
				resp.Results[m.pos] = batchQueryResult{Error: res.Err.Error(), Code: errorCode(res.Err)}
				continue
			}
			resp.Results[m.pos] = batchQueryResult{Reachable: res.Reachable}
			if st.cache != nil {
				st.cache.put(m.key, ver, res.Reachable)
			}
		}
		s.batchBufs.Put(bufp)
	}
	resp.Micros = float64(time.Since(start).Nanoseconds()) / 1e3
	return writeJSON(w, http.StatusOK, resp)
}

// resolveBatchQuery validates one batch input into index-level terms. The
// constraint must parse to a single plus segment — the QueryBatch class.
func (st *state) resolveBatchQuery(in batchQueryInput) (graph.Vertex, graph.Vertex, labelseq.Seq, error) {
	src, err := st.vertex(string(in.S))
	if err != nil {
		return 0, 0, nil, fmt.Errorf("s: %w", err)
	}
	dst, err := st.vertex(string(in.T))
	if err != nil {
		return 0, 0, nil, fmt.Errorf("t: %w", err)
	}
	e, err := st.parseExpr(in.L)
	if err != nil {
		return 0, 0, nil, fmt.Errorf("l: %w", err)
	}
	if len(e.Segments) != 1 || !e.Segments[0].Plus {
		return 0, 0, nil, errors.New("l: batch queries need a single L+ segment; use GET /query for multi-segment expressions")
	}
	return src, dst, e.Segments[0].Labels, nil
}

// reloadResponse is the POST /reload reply.
type reloadResponse struct {
	Generation uint64  `json:"generation"`
	Source     string  `json:"source"`
	Micros     float64 `json:"micros"`
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) bool {
	if s.opts.SnapshotSource == nil {
		return writeError(w, http.StatusNotImplemented,
			"reload not configured: start the server from a snapshot bundle")
	}
	start := time.Now()
	gen, err := s.Reload()
	if err != nil {
		return writeErr(w, http.StatusInternalServerError, err)
	}
	st := s.store.acquire()
	source := ""
	if st != nil {
		source = st.source
		st.release()
	}
	return writeJSON(w, http.StatusOK, reloadResponse{
		Generation: gen,
		Source:     source,
		Micros:     float64(time.Since(start).Nanoseconds()) / 1e3,
	})
}

// MutableStats is the write-path section of GET /stats (and Server.
// MutableStats): the current epoch, the pending journal, and fold history.
type MutableStats struct {
	// Epoch counts completed folds across the server's lifetime.
	Epoch uint64 `json:"epoch"`
	// Journal is the number of inserted edges not yet folded into the base.
	Journal int `json:"journal"`
	// Writes counts accepted edge inserts across all epochs.
	Writes uint64 `json:"writes"`
	// LastRebuildMicros is the duration of the most recent fold (0 before
	// the first).
	LastRebuildMicros float64 `json:"last_rebuild_micros,omitempty"`
	// LastRebuildError is the most recent fold failure ("" when the last
	// fold succeeded).
	LastRebuildError string `json:"last_rebuild_error,omitempty"`
}

// tierStatsResponse is the "tiers" section of /stats, present only when the
// serving index is size-budgeted. The hit counters are cumulative over the
// serving generation's lifetime; operators watch the definite/maybe ratio to
// judge whether the configured budget keeps the filter tier selective.
type tierStatsResponse struct {
	Budget             int64 `json:"budget"`
	RetainedVertices   int   `json:"retained_vertices"`
	DemotedVertices    int   `json:"demoted_vertices"`
	FilterBytes        int64 `json:"filter_bytes"`
	UnionSets          int   `json:"union_sets"`
	BloomBitsPerFilter int   `json:"bloom_bits_per_filter"`
	ExactHits          int64 `json:"exact_hits"`
	FilterDefinite     int64 `json:"filter_definite"`
	FilterMaybe        int64 `json:"filter_maybe"`
}

// statsResponse is the GET /stats reply.
type statsResponse struct {
	UptimeSeconds float64                  `json:"uptime_seconds"`
	Generation    uint64                   `json:"generation"`
	Source        string                   `json:"source"`
	Index         core.Stats               `json:"index"`
	Tiers         *tierStatsResponse       `json:"tiers,omitempty"`
	Build         *core.BuildStats         `json:"build,omitempty"`
	Cache         *CacheStats              `json:"cache,omitempty"`
	Mutable       *MutableStats            `json:"mutable,omitempty"`
	Endpoints     map[string]EndpointStats `json:"endpoints"`
}

// MutableStats snapshots the write path (the zero value when the server is
// immutable or closed).
func (s *Server) MutableStats() MutableStats {
	if !s.opts.Mutable {
		return MutableStats{}
	}
	st := s.store.acquire()
	if st == nil {
		return MutableStats{}
	}
	defer st.release()
	return s.mutableStats(st)
}

func (s *Server) mutableStats(st *state) MutableStats {
	ms := MutableStats{
		Epoch:             s.epoch.Load(),
		Journal:           st.delta.JournalLen(),
		Writes:            s.store.writes.Load(),
		LastRebuildMicros: float64(s.lastRebuildUS.Load()),
	}
	if e := s.lastRebuildEr.Load(); e != nil {
		ms.LastRebuildError = *e
	}
	return ms
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) bool {
	st := s.store.acquire()
	if st == nil {
		return writeError(w, http.StatusServiceUnavailable, "server closed")
	}
	defer st.release()
	resp := statsResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Generation:    st.gen,
		Source:        st.source,
		Index:         st.ix.Stats(),
		Build:         st.build,
		Endpoints: map[string]EndpointStats{
			"query":   s.mQuery.snapshot(),
			"batch":   s.mBatch.snapshot(),
			"update":  s.mUpdate.snapshot(),
			"rebuild": s.mRebuild.snapshot(),
			"reload":  s.mReload.snapshot(),
			"stats":   s.mStats.snapshot(),
			"healthz": s.mHealthz.snapshot(),
		},
	}
	if st.ix.Tiered() {
		ts := st.ix.TierStats()
		resp.Tiers = &tierStatsResponse{
			Budget:             ts.Budget,
			RetainedVertices:   ts.RetainedVertices,
			DemotedVertices:    ts.DemotedVertices,
			FilterBytes:        ts.FilterBytes,
			UnionSets:          ts.UnionSets,
			BloomBitsPerFilter: ts.BloomBitsPerFilter,
			ExactHits:          ts.ExactHits,
			FilterDefinite:     ts.FilterDefinite,
			FilterMaybe:        ts.FilterMaybe,
		}
	}
	if st.cache != nil {
		cst := st.cache.stats()
		resp.Cache = &cst
	}
	if st.delta != nil {
		ms := s.mutableStats(st)
		resp.Mutable = &ms
	}
	return writeJSON(w, http.StatusOK, resp)
}

// healthzResponse is the GET /healthz reply: liveness plus the minimum a
// probe — or the cluster router's health poller — needs to watch an epoch
// roll over and track replication progress without parsing full /stats.
// role, journal_seq, and bundle_fingerprint are always present; the router
// uses journal_seq as a safe lower bound when pinning clients to replicas
// (it only ever grows) and bundle_fingerprint to confirm lineage.
type healthzResponse struct {
	Status     string  `json:"status"`
	Generation uint64  `json:"generation"`
	Epoch      *uint64 `json:"epoch,omitempty"`
	Journal    *int    `json:"journal,omitempty"`
	// Role is the replication role ("standalone", "leader", "follower").
	Role string `json:"role"`
	// JournalSeq is the global insert sequence applied so far — folded
	// base plus overlay journal (seqNow of the serving generation).
	JournalSeq uint64 `json:"journal_seq"`
	// BundleFingerprint is the compact fingerprint of the serving base.
	BundleFingerprint string `json:"bundle_fingerprint"`
	// IndexBudget is the configured MaxIndexBytes when the serving index is
	// size-budgeted (tiered); omitted otherwise. Health pollers use it to
	// confirm a replica serves the intended index tier configuration.
	IndexBudget int64 `json:"index_budget,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) bool {
	st := s.store.acquire()
	if st == nil {
		return writeError(w, http.StatusServiceUnavailable, "server closed")
	}
	defer st.release()
	resp := healthzResponse{
		Status:            "ok",
		Generation:        st.gen,
		Role:              s.opts.role(),
		JournalSeq:        st.seqNow(),
		BundleFingerprint: st.fp.Compact(),
		IndexBudget:       st.ix.TierStats().Budget,
	}
	if st.delta != nil {
		// The pinned generation's own epoch, not the server-wide counter:
		// every field of one healthz reply describes a single generation.
		epoch := st.epoch
		journal := st.delta.JournalLen()
		resp.Epoch = &epoch
		resp.Journal = &journal
	}
	return writeJSON(w, http.StatusOK, resp)
}

type errorResponse struct {
	Error string `json:"error"`
	// Code is the machine-readable classification derived from the typed
	// sentinel the failure wraps ("" when the error carries no sentinel).
	Code string `json:"code,omitempty"`
}

// errorCode maps an error chain onto its stable wire code via the typed
// sentinels the facade exports; clients switch on these instead of parsing
// message text. rlcvet's errcode analyzer holds the mapping exhaustive: every
// sentinel this package (or a non-stdlib import) surfaces must appear here or
// carry an //rlc:errcode-exempt annotation.
//
//rlc:errcode
func errorCode(err error) string {
	var tooLarge *http.MaxBytesError
	switch {
	case err == nil:
		return ""
	case errors.As(err, &tooLarge):
		return "body_too_large"
	case errors.Is(err, core.ErrVertexRange):
		return "vertex_range"
	case errors.Is(err, core.ErrGraphMismatch):
		return "graph_mismatch"
	case errors.Is(err, snapshot.ErrCorrupt):
		return "corrupt_snapshot"
	case errors.Is(err, core.ErrTieredV1):
		return "tiered_v1"
	case errors.Is(err, core.ErrNotMinimumRepeat):
		return "not_minimum_repeat"
	case errors.Is(err, core.ErrConstraintTooLong):
		return "constraint_too_long"
	case errors.Is(err, core.ErrUnknownLabel):
		return "unknown_label"
	case errors.Is(err, core.ErrEmptyConstraint):
		return "empty_constraint"
	case errors.Is(err, dynamic.ErrDeletionsUnsupported):
		return "deletions_unsupported"
	case errors.Is(err, errNotMutable):
		return "immutable"
	case errors.Is(err, errNotLeader):
		return "not_leader"
	case errors.Is(err, errSeqFolded):
		return "behind_bundle"
	case errors.Is(err, errSeqAhead):
		return "foreign_log"
	case errors.Is(err, errEpochGone):
		return "epoch_gone"
	case errors.Is(err, automaton.ErrTooLarge):
		return "expression_too_large"
	case errors.Is(err, automaton.ErrEmpty):
		return "empty_expression"
	case errors.Is(err, errServerClosed):
		return "server_closed"
	case errors.Is(err, errComputePanicked):
		return "compute_panicked"
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return "canceled"
	default:
		return ""
	}
}

// ErrorCode exposes the wire-code classification to layers that embed the
// server and surface its errors on their own endpoints — the cluster
// leader's replication handlers switch on it ("behind_bundle",
// "foreign_log", "epoch_gone", ...) instead of matching message text.
func ErrorCode(err error) string { return errorCode(err) }

// writeErr reports a request failure carrying a real error: the message is
// the error text and the code its typed classification.
func writeErr(w http.ResponseWriter, status int, err error) bool {
	writeJSON(w, status, errorResponse{Error: err.Error(), Code: errorCode(err)})
	return false
}

// writeError reports a request failure with a plain message; the bool
// return (always false) lets handlers `return writeError(...)` and feed the
// endpoint error counter.
func writeError(w http.ResponseWriter, status int, format string, args ...any) bool {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
	return false
}

func writeJSON(w http.ResponseWriter, status int, v any) bool {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// The status line is already written, so an encode error cannot change
	// the response; the client sees the truncated body and fails its parse.
	_ = json.NewEncoder(w).Encode(v)
	return status < 400
}

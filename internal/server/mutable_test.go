package server

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/g-rpqs/rlc-go/internal/automaton"
	"github.com/g-rpqs/rlc-go/internal/core"
	"github.com/g-rpqs/rlc-go/internal/gen"
	"github.com/g-rpqs/rlc-go/internal/graph"
	"github.com/g-rpqs/rlc-go/internal/labelseq"
	"github.com/g-rpqs/rlc-go/internal/traversal"
)

func genER(n, m, labels int, seed int64) (*graph.Graph, error) {
	return gen.ER(n, m, labels, seed)
}

func compileExpr(t *testing.T, text string, g *graph.Graph) *automaton.NFA {
	t.Helper()
	e, err := automaton.ParseForGraph(text, g)
	if err != nil {
		t.Fatal(err)
	}
	nfa, err := automaton.Compile(e, g.NumLabels())
	if err != nil {
		t.Fatal(err)
	}
	return nfa
}

func postJSON(t *testing.T, url, body string, into any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("POST %s: decode: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestUpdateFlipsAnswerOverHTTP is the end-to-end write-path acceptance
// gate: a query answers false, is cached, an update lands, and the very
// next query answers true — proving both the delta overlay and the
// version-scoped invalidation of the cached negative.
func TestUpdateFlipsAnswerOverHTTP(t *testing.T) {
	g := graph.Fig2()
	_, hts := newTestServer(t, buildIndex(t, g), Options{Mutable: true, RebuildThreshold: -1})

	var q struct {
		Reachable bool `json:"reachable"`
		Cached    bool `json:"cached"`
	}
	u := queryURL(hts.URL, "v1", "v4", "l1")
	getJSON(t, u, &q)
	if q.Reachable {
		t.Fatal("(v1, v4, l1+) must be false on the original Fig. 2")
	}
	getJSON(t, u, &q)
	if q.Reachable || !q.Cached {
		t.Fatalf("second pre-update query: %+v, want cached false", q)
	}

	var up UpdateResult
	if code := postJSON(t, hts.URL+"/update", `{"s":"v1","l":"l1","t":"v4"}`, &up); code != http.StatusOK {
		t.Fatalf("update status %d", code)
	}
	if up.Accepted != 1 || up.Journal != 1 {
		t.Fatalf("update result %+v", up)
	}

	getJSON(t, u, &q)
	if !q.Reachable {
		t.Fatal("cached false survived the insert: version invalidation failed")
	}
	// The new TRUE caches and stays served.
	getJSON(t, u, &q)
	if !q.Reachable || !q.Cached {
		t.Fatalf("post-update warm query: %+v, want cached true", q)
	}
}

// TestUpdateValidation pins the typed error codes of the write path.
func TestUpdateValidation(t *testing.T) {
	g := graph.Fig2()
	_, hts := newTestServer(t, buildIndex(t, g), Options{Mutable: true, RebuildThreshold: -1})

	cases := []struct {
		name string
		body string
		code int
		want string
	}{
		{"vertex out of range", `{"s":99,"l":"l1","t":0}`, http.StatusBadRequest, "vertex_range"},
		{"unknown vertex name", `{"s":"nope","l":"l1","t":"v1"}`, http.StatusBadRequest, ""},
		{"label out of range", `{"s":"v1","l":9,"t":"v2"}`, http.StatusBadRequest, "unknown_label"},
		{"unknown label name", `{"s":"v1","l":"nope","t":"v2"}`, http.StatusBadRequest, "unknown_label"},
		{"delete rejected", `{"s":"v1","l":"l1","t":"v2","op":"delete"}`, http.StatusBadRequest, "deletions_unsupported"},
		{"unknown op", `{"s":"v1","l":"l1","t":"v2","op":"upsert"}`, http.StatusBadRequest, ""},
		{"empty update", `{}`, http.StatusBadRequest, ""},
		{"batch with bad edge", `{"edges":[{"s":"v1","l":"l1","t":"v2"},{"s":0,"l":"l1","t":77}]}`, http.StatusBadRequest, "vertex_range"},
	}
	for _, c := range cases {
		var e errorResponse
		if code := postJSON(t, hts.URL+"/update", c.body, &e); code != c.code {
			t.Errorf("%s: status %d, want %d (%+v)", c.name, code, c.code, e)
		}
		if e.Code != c.want {
			t.Errorf("%s: code %q, want %q (%s)", c.name, e.Code, c.want, e.Error)
		}
	}

	// Batch atomicity: the invalid batch above must not have applied its
	// valid first edge.
	var st statsResponse
	getJSON(t, hts.URL+"/stats", &st)
	if st.Mutable == nil || st.Mutable.Journal != 0 {
		t.Fatalf("failed batches leaked into the journal: %+v", st.Mutable)
	}
}

// TestImmutableServerRejectsWrites: the write path answers 501 with the
// "immutable" code unless Options.Mutable is set, and reloads are refused
// on mutable servers.
func TestImmutableServerRejectsWrites(t *testing.T) {
	g := graph.Fig2()
	srv, hts := newTestServer(t, buildIndex(t, g), Options{})
	var e errorResponse
	if code := postJSON(t, hts.URL+"/update", `{"s":"v1","l":"l1","t":"v4"}`, &e); code != http.StatusNotImplemented || e.Code != "immutable" {
		t.Fatalf("update on immutable server: %d %+v", code, e)
	}
	if code := postJSON(t, hts.URL+"/rebuild", `{}`, &e); code != http.StatusNotImplemented || e.Code != "immutable" {
		t.Fatalf("rebuild on immutable server: %d %+v", code, e)
	}
	if _, err := srv.UpdateBatch([]graph.Edge{{Src: 0, Dst: 1, Label: 0}}); err != errNotMutable {
		t.Fatalf("UpdateBatch error = %v", err)
	}

	mut, mhts := newTestServer(t, buildIndex(t, g), Options{Mutable: true, RebuildThreshold: -1})
	if code := postJSON(t, mhts.URL+"/reload", `{}`, &e); code != http.StatusNotImplemented {
		t.Fatalf("reload on mutable server: %d %+v", code, e)
	}
	if _, err := mut.Reload(); err == nil {
		t.Fatal("mutable Reload must fail")
	}
}

// TestRebuildEndpoint folds over HTTP: updates land, POST /rebuild folds
// them, the epoch advances, the journal empties, the generation swaps, and
// every answer survives the swap unchanged.
func TestRebuildEndpoint(t *testing.T) {
	g := graph.Fig2()
	_, hts := newTestServer(t, buildIndex(t, g), Options{Mutable: true, RebuildThreshold: -1})

	if code := postJSON(t, hts.URL+"/update",
		`{"edges":[{"s":"v1","l":"l1","t":"v4"},{"s":"v6","l":"l2","t":"v1"}]}`, nil); code != http.StatusOK {
		t.Fatalf("update status %d", code)
	}

	// Capture every (s, t, l) answer pre-fold.
	type ans struct{ s, t, l string }
	var pre []struct {
		q   ans
		got bool
	}
	for s := 1; s <= 6; s++ {
		for tt := 1; tt <= 6; tt++ {
			for _, l := range []string{"l1", "l2", "l1 l2"} {
				var qr struct {
					Reachable bool `json:"reachable"`
				}
				q := ans{s: "v" + string(rune('0'+s)), t: "v" + string(rune('0'+tt)), l: l}
				getJSON(t, queryURL(hts.URL, q.s, q.t, q.l), &qr)
				pre = append(pre, struct {
					q   ans
					got bool
				}{q, qr.Reachable})
			}
		}
	}

	var rr rebuildResponse
	if code := postJSON(t, hts.URL+"/rebuild", `{}`, &rr); code != http.StatusOK {
		t.Fatalf("rebuild status %d", code)
	}
	if rr.Epoch != 1 || rr.Folded != 2 || rr.Journal != 0 || rr.Generation != 2 {
		t.Fatalf("rebuild response %+v", rr)
	}

	var st statsResponse
	getJSON(t, hts.URL+"/stats", &st)
	if st.Generation != 2 || st.Mutable == nil || st.Mutable.Epoch != 1 || st.Mutable.Journal != 0 {
		t.Fatalf("post-fold stats: gen %d mutable %+v", st.Generation, st.Mutable)
	}
	var hz healthzResponse
	getJSON(t, hts.URL+"/healthz", &hz)
	if hz.Epoch == nil || *hz.Epoch != 1 || hz.Journal == nil || *hz.Journal != 0 {
		t.Fatalf("post-fold healthz: %+v", hz)
	}

	// Answers are identical across the swap.
	for _, p := range pre {
		var qr struct {
			Reachable bool `json:"reachable"`
		}
		getJSON(t, queryURL(hts.URL, p.q.s, p.q.t, p.q.l), &qr)
		if qr.Reachable != p.got {
			t.Fatalf("answer flipped across fold: (%s,%s,%s) %v -> %v", p.q.s, p.q.t, p.q.l, p.got, qr.Reachable)
		}
	}

	// A second rebuild with an empty journal is a no-op.
	if code := postJSON(t, hts.URL+"/rebuild", `{}`, &rr); code != http.StatusOK || rr.Folded != 0 || rr.Epoch != 1 {
		t.Fatalf("no-op rebuild: %d %+v", code, rr)
	}
}

// TestRebuildWritesBundle: with RebuildPath set, a fold writes a fresh v2
// bundle, swaps the server onto the mapped file, and the bundle re-opens
// and verifies standalone with the folded answer baked in.
func TestRebuildWritesBundle(t *testing.T) {
	g := graph.Fig2()
	path := filepath.Join(t.TempDir(), "folded.rlcs")
	var events []RebuildResult
	var mu sync.Mutex
	srv, hts := newTestServer(t, buildIndex(t, g), Options{
		Mutable:          true,
		RebuildThreshold: -1,
		RebuildPath:      path,
		OnRebuild: func(r RebuildResult) {
			mu.Lock()
			events = append(events, r)
			mu.Unlock()
		},
	})

	if _, err := srv.UpdateBatch([]graph.Edge{{Src: 0, Dst: 3, Label: 0}}); err != nil {
		t.Fatal(err)
	}
	res, err := srv.Rebuild()
	if err != nil {
		t.Fatal(err)
	}
	if res.Path != path || res.Folded != 1 {
		t.Fatalf("rebuild result %+v", res)
	}
	mu.Lock()
	if len(events) != 1 || events[0].Err != nil || events[0].Epoch != 1 {
		t.Fatalf("OnRebuild events: %+v", events)
	}
	mu.Unlock()

	var st statsResponse
	getJSON(t, hts.URL+"/stats", &st)
	if !strings.Contains(st.Source, path) {
		t.Fatalf("source %q does not mention the folded bundle", st.Source)
	}

	snap, err := core.OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	if err := snap.Verify(); err != nil {
		t.Fatal(err)
	}
	ok, err := snap.Index().Query(0, 3, labelseq.Seq{0})
	if err != nil || !ok {
		t.Fatalf("folded bundle lost the inserted edge: %v, %v", ok, err)
	}
}

// TestMutableBatchAndExprExactness routes POST /batch and multi-segment
// GET /query through a mutable server with a non-empty journal and compares
// every answer with traversal over the materialized union.
func TestMutableBatchAndExprExactness(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	g, err := genER(600, 1800, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	srv, hts := newTestServer(t, buildIndex(t, g), Options{Mutable: true, RebuildThreshold: -1})
	edges := make([]graph.Edge, 120)
	for i := range edges {
		edges[i] = graph.Edge{
			Src:   graph.Vertex(r.Intn(600)),
			Dst:   graph.Vertex(r.Intn(600)),
			Label: graph.Label(r.Intn(3)),
		}
	}
	if _, err := srv.UpdateBatch(edges); err != nil {
		t.Fatal(err)
	}
	union := unionOf(g, edges)

	// Batch: 60 single-segment queries, compared against union traversal.
	var body strings.Builder
	body.WriteString(`{"queries":[`)
	type bq struct {
		s, t graph.Vertex
		l    labelseq.Seq
	}
	pool := make([]bq, 60)
	seqs := []labelseq.Seq{{0}, {1}, {0, 1}, {2, 0}}
	for i := range pool {
		pool[i] = bq{graph.Vertex(r.Intn(600)), graph.Vertex(r.Intn(600)), seqs[r.Intn(len(seqs))]}
		if i > 0 {
			body.WriteByte(',')
		}
		toks := make([]string, len(pool[i].l))
		for j, lb := range pool[i].l {
			toks[j] = "l" + string(rune('0'+lb))
		}
		body.WriteString(`{"s":` + itoa(int(pool[i].s)) + `,"t":` + itoa(int(pool[i].t)) + `,"l":"` + strings.Join(toks, " ") + `"}`)
	}
	body.WriteString(`]}`)
	var batch batchResponse
	if code := postJSON(t, hts.URL+"/batch", body.String(), &batch); code != http.StatusOK {
		t.Fatalf("batch status %d", code)
	}
	for i, res := range batch.Results {
		if res.Error != "" {
			t.Fatalf("batch query %d: %s", i, res.Error)
		}
		want, err := traversal.EvalRLC(union, pool[i].s, pool[i].t, pool[i].l)
		if err != nil {
			t.Fatal(err)
		}
		if res.Reachable != want {
			t.Fatalf("batch query %d: got %v, union traversal %v", i, res.Reachable, want)
		}
	}

	// Multi-segment expressions go through the overlay's NFA search.
	ev := traversal.NewEvaluator(union)
	for i := 0; i < 40; i++ {
		s := graph.Vertex(r.Intn(600))
		tt := graph.Vertex(r.Intn(600))
		var qr struct {
			Reachable bool   `json:"reachable"`
			Error     string `json:"error"`
		}
		getJSON(t, queryURL(hts.URL, itoa(int(s)), itoa(int(tt)), "l0+ l1+"), &qr)
		got, _, err := srv.AnswerRLC(context.Background(), s, tt, labelseq.Seq{0, 1, 2}) // beyond k=2
		if err != nil {
			t.Fatal(err)
		}
		nfa := compileExpr(t, "l0+ l1+", union)
		if want := ev.BFS(s, tt, nfa); qr.Reachable != want {
			t.Fatalf("expr query %d: got %v, union BFS %v", i, qr.Reachable, want)
		}
		want, err := traversal.EvalRLC(union, s, tt, labelseq.Seq{0, 1, 2})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("beyond-k query %d: got %v, union traversal %v", i, got, want)
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

func unionOf(g *graph.Graph, extra []graph.Edge) *graph.Graph {
	b := graph.NewBuilder(g.NumVertices(), g.NumLabels())
	for _, e := range g.Edges() {
		b.AddEdge(e.Src, e.Label, e.Dst)
	}
	for _, e := range extra {
		b.AddEdge(e.Src, e.Label, e.Dst)
	}
	return b.Build()
}

// soakConfig sizes one mutable-soak run (see runMutableSoak).
type soakConfig struct {
	nVertices, nLabels, baseEdges int
	inserts, threshold            int
	readers, perReader, poolSize  int
	disablePacked                 bool // base (and thus every fold) on the scan path
}

// TestMutableSoakOracle is the headline exactness proof: ≥100k mixed
// queries race concurrent single-edge inserts across ≥3 background
// rebuild/hot-swap epochs (each fold writing and mmapping a fresh v2
// bundle), and EVERY answer is checked against a linearizability oracle.
// The base index is packed (the default), so every fold emits and hot-swaps
// a bundle with packed sections — the bit-parallel path is held to the same
// envelope.
//
// The oracle: insertions are pre-planned, and for each pool query q the
// enabling prefix e(q) — the number of applied inserts after which q first
// becomes true — is precomputed by binary search with online traversal
// (answers are monotone because the graph only grows). A reader brackets
// each query between w0 (inserts COMPLETED before it started) and w1
// (inserts STARTED before it finished): the answer must be true if
// w0 >= e(q), must be false if w1 < e(q), and is otherwise free — exactly
// the linearizable envelope. Any stale cache entry, torn epoch swap, or
// lost journal edge lands outside it.
func TestMutableSoakOracle(t *testing.T) {
	runMutableSoak(t, soakConfig{
		nVertices: 200, nLabels: 2, baseEdges: 500,
		inserts: 900, threshold: 250, // 900 inserts / 250 => >= 3 background folds
		readers: 4, perReader: 25000, poolSize: 96, // 4 x 25k = 100k queries
	})
}

// TestMutableSoakOracleScanPath re-runs the soak (reduced volume) with the
// packed form disabled on the base index: folds inherit DisablePacked, so
// every rebuilt bundle stays on the linear-scan path — pinning that the
// fold option inheritance works and that the scan fallback meets the same
// linearizability envelope.
func TestMutableSoakOracleScanPath(t *testing.T) {
	runMutableSoak(t, soakConfig{
		nVertices: 120, nLabels: 2, baseEdges: 300,
		inserts: 300, threshold: 100, // still >= 3 folds
		readers: 4, perReader: 8000, poolSize: 64,
		disablePacked: true,
	})
}

func runMutableSoak(t *testing.T, cfg soakConfig) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	var (
		nVertices = cfg.nVertices
		nLabels   = cfg.nLabels
		baseEdges = cfg.baseEdges
		inserts   = cfg.inserts
		threshold = cfg.threshold
		readers   = cfg.readers
		perReader = cfg.perReader
		poolSize  = cfg.poolSize
	)
	r := rand.New(rand.NewSource(77))
	g, err := genER(nVertices, baseEdges, nLabels, 13)
	if err != nil {
		t.Fatal(err)
	}
	stream := make([]graph.Edge, inserts)
	for i := range stream {
		stream[i] = graph.Edge{
			Src:   graph.Vertex(r.Intn(nVertices)),
			Dst:   graph.Vertex(r.Intn(nVertices)),
			Label: graph.Label(r.Intn(nLabels)),
		}
	}

	type poolQuery struct {
		s, t     graph.Vertex
		l        labelseq.Seq
		enabling int // first prefix length making it true; inserts+1 = never
	}
	pool := make([]poolQuery, poolSize)
	seqs := []labelseq.Seq{{0}, {1}, {0, 1}, {1, 0}}
	prefixes := map[int]*graph.Graph{}
	prefix := func(p int) *graph.Graph {
		if u, ok := prefixes[p]; ok {
			return u
		}
		u := unionOf(g, stream[:p])
		prefixes[p] = u
		return u
	}
	evalAt := func(q *poolQuery, p int) bool {
		ok, err := traversal.EvalRLC(prefix(p), q.s, q.t, q.l)
		if err != nil {
			t.Fatal(err)
		}
		return ok
	}
	for i := range pool {
		q := &pool[i]
		q.s = graph.Vertex(r.Intn(nVertices))
		q.t = graph.Vertex(r.Intn(nVertices))
		q.l = seqs[r.Intn(len(seqs))]
		switch {
		case evalAt(q, 0):
			q.enabling = 0
		case !evalAt(q, inserts):
			q.enabling = inserts + 1
		default:
			// Monotone flip point: binary search the first true prefix.
			lo, hi := 1, inserts
			for lo < hi {
				mid := (lo + hi) / 2
				if evalAt(q, mid) {
					hi = mid
				} else {
					lo = mid + 1
				}
			}
			q.enabling = lo
		}
	}

	path := filepath.Join(t.TempDir(), "soak.rlcs")
	var folds atomic.Int64
	base, err := core.Build(g, core.Options{K: 2, DisablePacked: cfg.disablePacked})
	if err != nil {
		t.Fatalf("build index: %v", err)
	}
	srv := New(base, Options{
		Mutable:          true,
		RebuildThreshold: threshold,
		RebuildPath:      path,
		OnRebuild: func(res RebuildResult) {
			if res.Err != nil {
				t.Errorf("fold failed: %v", res.Err)
			}
			folds.Add(1)
		},
	})
	defer srv.Close()

	var (
		started    atomic.Int64 // inserts whose UpdateBatch call has begun
		completed  atomic.Int64 // inserts whose UpdateBatch call has returned
		reads      atomic.Int64
		wrong      atomic.Int64
		writerDone atomic.Bool
	)
	// Two-way pacing interleaves the full query volume with the full
	// insert stream (and the folds it triggers): the writer waits for
	// reader progress, and readers may run only a bounded distance ahead
	// of the writer — otherwise 100k mostly-cached queries finish before
	// the epochs they are supposed to span.
	pace := int64(readers*perReader) / int64(inserts)
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rr := rand.New(rand.NewSource(seed))
			for i := 0; i < perReader; i++ {
				for reads.Load() > completed.Load()*pace+2000 && !writerDone.Load() {
					time.Sleep(20 * time.Microsecond)
				}
				q := &pool[rr.Intn(poolSize)]
				w0 := completed.Load()
				got, _, err := srv.AnswerRLC(ctx, q.s, q.t, q.l)
				w1 := started.Load()
				if err != nil {
					t.Errorf("soak query: %v", err)
					wrong.Add(1)
					return
				}
				if got && int(w1) < q.enabling {
					t.Errorf("answered true before any enabling insert: (%d,%d,%v+) e=%d w1=%d", q.s, q.t, q.l, q.enabling, w1)
					wrong.Add(1)
					return
				}
				if !got && int(w0) >= q.enabling {
					t.Errorf("answered false after its enabling insert completed: (%d,%d,%v+) e=%d w0=%d", q.s, q.t, q.l, q.enabling, w0)
					wrong.Add(1)
					return
				}
				reads.Add(1)
			}
		}(int64(9000 + w))
	}

	for i, e := range stream {
		for reads.Load() < int64(i)*pace && wrong.Load() == 0 {
			time.Sleep(50 * time.Microsecond)
		}
		// A real-time cadence (~1ms per insert) stretches the stream far
		// past a fold's duration, so threshold crossings — and the hot
		// swaps they cause — land in the middle of query traffic instead
		// of after it.
		time.Sleep(time.Millisecond)
		started.Add(1)
		if _, err := srv.UpdateBatch([]graph.Edge{e}); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		completed.Add(1)
	}
	writerDone.Store(true)
	wg.Wait()
	if wrong.Load() > 0 {
		t.Fatalf("%d oracle violations", wrong.Load())
	}
	if got := reads.Load(); got != int64(readers*perReader) {
		t.Fatalf("completed %d queries, want %d", got, readers*perReader)
	}

	// Drain any in-flight background fold, then check the epoch count and
	// final exactness against the fully-inserted ground truth.
	deadline := time.Now().Add(60 * time.Second)
	for srv.rebuilding.Load() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	ms := srv.MutableStats()
	if ms.Epoch < 3 {
		t.Fatalf("soak spanned %d rebuild epochs, want >= 3", ms.Epoch)
	}
	if ms.Writes != uint64(inserts) {
		t.Fatalf("writes counter = %d, want %d", ms.Writes, inserts)
	}
	final := prefix(inserts)
	for i := range pool {
		q := &pool[i]
		want, err := traversal.EvalRLC(final, q.s, q.t, q.l)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := srv.AnswerRLC(ctx, q.s, q.t, q.l)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("final answer (%d,%d,%v+) = %v, ground truth %v", q.s, q.t, q.l, got, want)
		}
	}

	// The last fold's bundle on disk must verify and carry the base's
	// representation: packed sections when the base was packed, none when
	// the soak ran the scan path.
	snap, err := core.OpenSnapshot(path)
	if err != nil {
		t.Fatalf("open folded bundle: %v", err)
	}
	defer snap.Close()
	if err := snap.Verify(); err != nil {
		t.Fatalf("folded bundle fails Verify: %v", err)
	}
	if got, want := snap.Index().Packed(), !cfg.disablePacked; got != want {
		t.Fatalf("folded bundle packed = %v, want %v", got, want)
	}
}

package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"github.com/g-rpqs/rlc-go/internal/core"
	"github.com/g-rpqs/rlc-go/internal/dynamic"
	"github.com/g-rpqs/rlc-go/internal/graph"
)

// errNotMutable rejects write-path operations on a read-only server.
var errNotMutable = errors.New("server: not mutable; start with Options.Mutable (rlcserve -mutable) to accept updates")

// UpdateResult reports one accepted update batch.
type UpdateResult struct {
	// Accepted is the number of edges appended to the journal.
	Accepted int `json:"accepted"`
	// Journal is the journal length after the batch.
	Journal int `json:"journal"`
	// Epoch is the fold epoch the batch landed in.
	Epoch uint64 `json:"epoch"`
	// Seq is the global insert sequence after the batch — a consistency
	// token at least as new as every edge in it: a replica serving at or
	// past (Epoch, Seq) reflects the write (read-your-writes routing).
	Seq uint64 `json:"seq"`
	// RebuildTriggered reports that this batch pushed the journal across
	// the threshold and a background fold was started.
	RebuildTriggered bool `json:"rebuild_triggered"`
}

// RebuildResult reports one completed fold-and-rebuild.
type RebuildResult struct {
	// Epoch is the epoch the fold produced.
	Epoch uint64 `json:"epoch"`
	// Generation is the store generation serving the folded base.
	Generation uint64 `json:"generation"`
	// Folded is how many journal edges were folded into the new base.
	Folded int `json:"folded"`
	// Journal is how many un-folded edges the new epoch starts with
	// (inserts that arrived while the rebuild ran).
	Journal int `json:"journal"`
	// Path is the bundle the fold wrote ("" for in-process folds).
	Path string `json:"path,omitempty"`
	// Duration is the wall time of the fold, including the index build
	// and bundle write.
	Duration time.Duration `json:"-"`
	// Err is set only on the OnRebuild callback for failed folds; the
	// previous generation keeps serving.
	Err error `json:"-"`
}

// UpdateBatch validates and inserts edges atomically: either every edge is
// appended to the serving generation's journal in one publish, or none is.
// Queries racing with the batch never block and answer exactly against
// whatever prefix of the batch is visible. Crossing Options.
// RebuildThreshold triggers a background fold; the call never waits for it.
func (s *Server) UpdateBatch(edges []graph.Edge) (UpdateResult, error) {
	if !s.opts.Mutable {
		return UpdateResult{}, errNotMutable
	}
	s.updateMu.Lock()
	defer s.updateMu.Unlock()
	st := s.store.acquire()
	if st == nil {
		return UpdateResult{}, errServerClosed
	}
	defer st.release()
	if err := st.delta.AddEdges(edges); err != nil {
		return UpdateResult{}, err
	}
	// Bump the cache version after publishing: computes that missed the
	// new edges carry an older stamp and are never served to requests
	// that start after this call returns.
	s.store.writes.Add(uint64(len(edges)))
	// Epoch and Seq come from the pinned generation the batch landed in
	// (updateMu excludes a concurrent fold's swap, so it IS the current
	// one) — mutually consistent coordinates for the write token.
	res := UpdateResult{
		Accepted: len(edges),
		Journal:  st.delta.JournalLen(),
		Epoch:    st.epoch,
		Seq:      st.seqNow(),
	}
	if thr := s.opts.RebuildThreshold; thr > 0 && res.Journal >= thr {
		res.RebuildTriggered = s.TriggerRebuild()
	}
	return res, nil
}

// TriggerRebuild starts a background fold-and-rebuild goroutine, reporting
// whether it started one (false when the server is immutable or a fold is
// already running). The folder keeps folding until the journal is back
// under the threshold or a fold fails.
func (s *Server) TriggerRebuild() bool {
	if !s.opts.Mutable {
		return false
	}
	if !s.rebuilding.CompareAndSwap(false, true) {
		return false
	}
	go func() {
		defer s.rebuilding.Store(false)
		for {
			res, err := s.rebuildOnce()
			if err != nil {
				return
			}
			if thr := s.opts.RebuildThreshold; thr <= 0 || res.Journal < thr {
				return
			}
		}
	}()
	return true
}

// Rebuild folds the journal into a rebuilt base synchronously and returns
// the fold's outcome. Queries never block on it; concurrent updates are
// carried into the new epoch. A no-op (empty journal) returns the current
// epoch with Folded == 0.
func (s *Server) Rebuild() (RebuildResult, error) {
	if !s.opts.Mutable {
		return RebuildResult{}, errNotMutable
	}
	return s.rebuildOnce()
}

// rebuildOnce performs one complete fold: materialize base ∪ journal from
// the serving generation, rebuild the index (no server lock held — queries
// and updates proceed), optionally write and re-open a fresh v2 bundle,
// then swap the new generation in with the un-folded journal tail carried
// over. Writers are paused only for the carry-over and swap.
func (s *Server) rebuildOnce() (res RebuildResult, err error) {
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	start := time.Now()
	defer func() { s.finishRebuild(&res, start, err) }()

	union, folded, buildOpts, err := s.foldInput()
	if err != nil {
		return res, err
	}
	if folded == 0 {
		res = RebuildResult{Epoch: s.epoch.Load(), Generation: s.store.Generation()}
		return res, nil
	}

	buildOpts.BuildWorkers = s.opts.RebuildWorkers
	ix, err := core.Build(union, buildOpts)
	if err != nil {
		err = fmt.Errorf("server: fold rebuild: %w", err)
		return res, err
	}
	var (
		src    *core.Snapshot
		source = "folded in-process"
	)
	if s.opts.RebuildPath != "" {
		if err = ix.SaveSnapshotFile(s.opts.RebuildPath); err != nil {
			err = fmt.Errorf("server: write folded bundle: %w", err)
			return res, err
		}
		src, err = core.OpenSnapshot(s.opts.RebuildPath)
		if err == nil {
			if verr := src.Verify(); verr != nil {
				src.Close()
				err = verr
			}
		}
		if err != nil {
			err = fmt.Errorf("server: reopen folded bundle: %w", err)
			return res, err
		}
		ix = src.Index()
		source = "folded snapshot " + s.opts.RebuildPath
	}

	leftover, epoch, err := s.installFolded(ix, src, folded, source)
	if err != nil {
		return res, err
	}

	res = RebuildResult{
		Epoch:      epoch,
		Generation: s.store.Generation(),
		Folded:     folded,
		Journal:    leftover,
		Path:       s.opts.RebuildPath,
	}
	return res, nil
}

// foldInput pins the serving generation just long enough to materialize
// base ∪ journal and read the build parameters. The fold inherits the base
// index's build options (k, packed/unpacked, pruning flags) so a rebuilt
// epoch answers from the same representation the base did — in particular,
// folds of a packed base emit packed bundles. The pin is defer-scoped so a
// panic inside FoldInput cannot strand the generation's snapshot.
func (s *Server) foldInput() (union *graph.Graph, folded int, opts core.Options, err error) {
	st := s.store.acquire()
	if st == nil {
		return nil, 0, core.Options{}, errServerClosed
	}
	defer st.release()
	union, folded = st.delta.FoldInput()
	opts = st.ix.BuildOptions()
	opts.K = st.ix.K()
	return union, folded, opts, nil
}

// installFolded pauses writers, carries the un-folded journal tail into the
// new generation, and swaps it in. Returns the carried-over journal length
// and the new epoch. Writers pause only here, so the journal tail observed
// is complete and no insert slips between carry-over and swap. The pin is
// defer-scoped: a panic in JournalTail or the swap cannot strand the
// pre-fold generation.
func (s *Server) installFolded(ix *core.Index, src *core.Snapshot, folded int, source string) (leftover int, epoch uint64, err error) {
	s.updateMu.Lock()
	defer s.updateMu.Unlock()
	st := s.store.acquire()
	if st == nil {
		if src != nil {
			src.Close()
		}
		return 0, 0, errServerClosed
	}
	defer st.release()
	tail := st.delta.JournalTail(folded)
	// The new generation advances the replication timeline: one more epoch,
	// and the folded journal prefix moves under the base (seqBase). Derived
	// from the pinned pre-fold state so a racing reader's (epoch, seq)
	// translation stays consistent with whichever generation it pinned.
	epoch = st.epoch + 1
	seqBase := st.seqBase + uint64(folded)
	if src != nil {
		s.store.SwapFolded(ix, src, tail, source, epoch, seqBase)
	} else {
		s.store.SwapFolded(ix, nil, tail, source, epoch, seqBase)
	}
	s.epoch.Store(epoch)
	return len(tail), epoch, nil
}

// finishRebuild records fold telemetry and fires the OnRebuild callback.
func (s *Server) finishRebuild(res *RebuildResult, start time.Time, err error) {
	res.Duration = time.Since(start)
	s.lastRebuildUS.Store(res.Duration.Microseconds())
	msg := ""
	if err != nil {
		msg = err.Error()
	}
	s.lastRebuildEr.Store(&msg)
	if s.opts.OnRebuild != nil {
		cb := *res
		cb.Err = err
		s.opts.OnRebuild(cb)
	}
}

// updateEdgeInput is one edge of a POST /update request. s and t accept
// numeric ids or display names (like queries); l is a single label token
// (id, "l<i>", or name). op may be "insert" (the default); "delete" is
// rejected with the deletions_unsupported code — the RLC index is
// insert-only incremental.
type updateEdgeInput struct {
	S vertexToken `json:"s"`
	// L reuses the token normalizer so labels, like vertices, arrive as a
	// JSON number (1) or string ("credits").
	L  vertexToken `json:"l"`
	T  vertexToken `json:"t"`
	Op string      `json:"op,omitempty"`
}

// updateRequest is the POST /update body: either one inline edge
// ({"s":0,"l":"l1","t":4}) or a batch ({"edges":[...]}) — batches apply
// atomically, so one invalid edge rejects the request.
type updateRequest struct {
	updateEdgeInput
	Edges []updateEdgeInput `json:"edges"`
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) bool {
	if !s.opts.Mutable {
		return writeErr(w, http.StatusNotImplemented, errNotMutable)
	}
	if s.opts.Role == "follower" {
		return writeErr(w, http.StatusForbidden, errNotLeader)
	}
	st := s.store.acquire()
	if st == nil {
		return writeError(w, http.StatusServiceUnavailable, "server closed")
	}
	defer st.release()
	s.limitBody(w, r)
	var req updateRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return writeErr(w, http.StatusRequestEntityTooLarge, err)
		}
		return writeError(w, http.StatusBadRequest, "decode request: %v", err)
	}
	inputs := req.Edges
	if len(inputs) == 0 {
		if string(req.S) == "" && string(req.T) == "" && string(req.L) == "" {
			return writeError(w, http.StatusBadRequest, "empty update: provide s/l/t or a non-empty edges array")
		}
		inputs = []updateEdgeInput{req.updateEdgeInput}
	}
	if len(inputs) > s.opts.MaxBatch {
		return writeError(w, http.StatusRequestEntityTooLarge,
			"update of %d edges exceeds the limit of %d", len(inputs), s.opts.MaxBatch)
	}
	edges := make([]graph.Edge, len(inputs))
	for i, in := range inputs {
		e, err := st.resolveUpdateEdge(in)
		if err != nil {
			return writeErr(w, http.StatusBadRequest, fmt.Errorf("edge %d: %w", i, err))
		}
		edges[i] = e
	}
	res, err := s.UpdateBatch(edges)
	if err != nil {
		return writeErr(w, http.StatusUnprocessableEntity, err)
	}
	// Write token headers come from the batch's own result, not the
	// handler's pin: a fold may have swapped generations between this
	// handler's acquire and the batch landing, and the token must describe
	// the generation that actually took the write.
	h := w.Header()
	h.Set(HeaderEpoch, strconv.FormatUint(res.Epoch, 10))
	h.Set(HeaderSeq, strconv.FormatUint(res.Seq, 10))
	return writeJSON(w, http.StatusOK, res)
}

// resolveUpdateEdge validates one update input into a graph edge.
func (st *state) resolveUpdateEdge(in updateEdgeInput) (graph.Edge, error) {
	switch in.Op {
	case "", "insert":
	case "delete":
		return graph.Edge{}, dynamic.ErrDeletionsUnsupported
	default:
		return graph.Edge{}, fmt.Errorf("unknown op %q (want \"insert\")", in.Op)
	}
	src, err := st.vertex(string(in.S))
	if err != nil {
		return graph.Edge{}, fmt.Errorf("s: %w", err)
	}
	dst, err := st.vertex(string(in.T))
	if err != nil {
		return graph.Edge{}, fmt.Errorf("t: %w", err)
	}
	lb, err := st.label(string(in.L))
	if err != nil {
		return graph.Edge{}, fmt.Errorf("l: %w", err)
	}
	return graph.Edge{Src: src, Dst: dst, Label: lb}, nil
}

// label resolves a label token: a numeric id, a display name, or the
// "l<i>" spelling the expression syntax uses for unnamed labels. Range
// violations wrap ErrUnknownLabel, the same sentinel the index uses, so
// clients see one stable error code.
func (st *state) label(tok string) (graph.Label, error) {
	if tok == "" {
		return 0, fmt.Errorf("%w: missing label", core.ErrUnknownLabel)
	}
	if id, err := strconv.Atoi(tok); err == nil {
		if id < 0 || id >= st.g.NumLabels() {
			return 0, fmt.Errorf("%w: label %d out of range [0, %d)", core.ErrUnknownLabel, id, st.g.NumLabels())
		}
		return graph.Label(id), nil
	}
	if l, ok := st.g.LabelByName(tok); ok {
		return l, nil
	}
	if len(tok) > 1 && tok[0] == 'l' {
		if id, err := strconv.Atoi(tok[1:]); err == nil {
			if id >= 0 && id < st.g.NumLabels() {
				return graph.Label(id), nil
			}
			return 0, fmt.Errorf("%w: label %s out of range [0, %d)", core.ErrUnknownLabel, tok, st.g.NumLabels())
		}
	}
	return 0, fmt.Errorf("%w: unknown label %q", core.ErrUnknownLabel, tok)
}

// rebuildResponse is the POST /rebuild reply.
type rebuildResponse struct {
	Epoch      uint64  `json:"epoch"`
	Generation uint64  `json:"generation"`
	Folded     int     `json:"folded"`
	Journal    int     `json:"journal"`
	Path       string  `json:"path,omitempty"`
	Micros     float64 `json:"micros"`
}

// handleRebuild folds synchronously: the admin caller waits for the fold,
// queries never do.
func (s *Server) handleRebuild(w http.ResponseWriter, r *http.Request) bool {
	if !s.opts.Mutable {
		return writeErr(w, http.StatusNotImplemented, errNotMutable)
	}
	if s.opts.Role == "follower" {
		return writeErr(w, http.StatusForbidden, errNotLeader)
	}
	res, err := s.Rebuild()
	if err != nil {
		return writeErr(w, http.StatusInternalServerError, err)
	}
	return writeJSON(w, http.StatusOK, rebuildResponse{
		Epoch:      res.Epoch,
		Generation: res.Generation,
		Folded:     res.Folded,
		Journal:    res.Journal,
		Path:       res.Path,
		Micros:     float64(res.Duration.Nanoseconds()) / 1e3,
	})
}

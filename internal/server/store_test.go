package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/g-rpqs/rlc-go/internal/core"
	"github.com/g-rpqs/rlc-go/internal/graph"
	"github.com/g-rpqs/rlc-go/internal/labelseq"
)

// chainGraph builds a two-label chain 0 -l-> 1 -l-> 2 ... where l is the
// given label, so (0, n-1, l+) is true exactly for that label. Swapping
// between the label-0 and label-1 variants makes the serving generation
// observable through query answers.
func chainGraph(n int, label graph.Label) *graph.Graph {
	b := graph.NewBuilder(n, 2)
	for i := 0; i < n-1; i++ {
		b.AddEdge(graph.Vertex(i), label, graph.Vertex(i+1))
	}
	return b.Build()
}

// saveSnapshot builds an index over g and writes its bundle to a file, so
// reopening goes through the real mmap path (use-after-unmap then crashes
// instead of silently reading stale heap bytes).
func saveSnapshot(t testing.TB, g *graph.Graph, path string) {
	t.Helper()
	ix, err := core.Build(g, core.Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.SaveSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
}

func openSnapshot(t testing.TB, path string) *core.Snapshot {
	t.Helper()
	snap, err := core.OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := snap.Verify(); err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestHotSwapUnderLoad is the acceptance test for the RCU store: query
// goroutines hammer the serving path while the main goroutine swaps
// mmap-backed snapshots as fast as it can. Every query must succeed and
// answer consistently with SOME generation (the label-0 or the label-1
// chain) — never error, never crash on an unmapped snapshot, never observe
// a torn index. Run under -race in CI.
func TestHotSwapUnderLoad(t *testing.T) {
	const n = 50
	dir := t.TempDir()
	pathA := filepath.Join(dir, "a.rlcs")
	pathB := filepath.Join(dir, "b.rlcs")
	saveSnapshot(t, chainGraph(n, 0), pathA)
	saveSnapshot(t, chainGraph(n, 1), pathB)

	srv := NewFromSnapshot(openSnapshot(t, pathA), Options{})
	defer srv.Close()

	const (
		readers = 6
		swaps   = 300
	)
	var (
		stop    atomic.Bool
		queries atomic.Int64
		wg      sync.WaitGroup
	)
	ctx := context.Background()
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				// The public path must never error, whatever the swap storm
				// is doing underneath.
				if _, err := srv.QueryRLC(ctx, 0, n-1, labelseq.Seq{0}); err != nil {
					t.Errorf("reader %d: public query: %v", r, err)
					return
				}
				// Torn-read probe: pin ONE generation and ask both
				// questions of it. Odd generations serve the label-0 chain,
				// even ones the label-1 chain, so within a pin exactly one
				// answer is true and it must match the pinned generation's
				// parity. Any other combination means a torn index.
				st := srv.Store().acquire()
				if st == nil {
					t.Errorf("reader %d: store closed mid-test", r)
					return
				}
				gen := st.gen
				a, errA := st.ix.Query(0, n-1, labelseq.Seq{0})
				b, errB := st.ix.Query(0, n-1, labelseq.Seq{1})
				st.release()
				if errA != nil || errB != nil {
					t.Errorf("reader %d: pinned queries: %v, %v", r, errA, errB)
					return
				}
				if wantA := gen%2 == 1; a != wantA || b == wantA {
					t.Errorf("reader %d: torn read at generation %d: l0=%v l1=%v", r, gen, a, b)
					return
				}
				queries.Add(1)
			}
		}(r)
	}

	paths := [2]string{pathB, pathA}
	for i := 0; i < swaps && !t.Failed(); i++ {
		srv.Store().SwapSnapshot(openSnapshot(t, paths[i%2]))
	}
	stop.Store(true)
	wg.Wait()
	if got := srv.Store().Generation(); got != swaps+1 {
		t.Errorf("generation = %d, want %d", got, swaps+1)
	}
	t.Logf("%d queries raced %d snapshot swaps", queries.Load(), swaps)
	if queries.Load() == 0 {
		t.Fatal("no queries completed during the swap storm")
	}
}

// TestStoreDrainClosesOldSnapshot pins the RCU retirement order: a swapped-
// out generation stays usable for a query that pinned it, and only the last
// release closes the backing snapshot.
func TestStoreDrainClosesOldSnapshot(t *testing.T) {
	dir := t.TempDir()
	pathA := filepath.Join(dir, "a.rlcs")
	pathB := filepath.Join(dir, "b.rlcs")
	saveSnapshot(t, chainGraph(10, 0), pathA)
	saveSnapshot(t, chainGraph(10, 1), pathB)

	store := NewStoreFromSnapshot(openSnapshot(t, pathA), Options{})
	defer store.Close()

	st := store.acquire() // a long-running in-flight query pins generation 1
	if st == nil {
		t.Fatal("acquire failed")
	}
	store.SwapSnapshot(openSnapshot(t, pathB))

	// The pinned generation must still answer from its (retired but not yet
	// closed) mapping.
	ok, err := st.ix.Query(0, 9, labelseq.Seq{0})
	if err != nil || !ok {
		t.Fatalf("pinned old generation: (%v, %v), want (true, nil)", ok, err)
	}
	// New queries already see generation 2.
	ok, err = store.Index().Query(0, 9, labelseq.Seq{1})
	if err != nil || !ok {
		t.Fatalf("new generation: (%v, %v), want (true, nil)", ok, err)
	}
	if !st.retired.Load() {
		t.Fatal("old generation not marked retired after swap")
	}
	if st.refs.Load() != 1 {
		t.Fatalf("old generation refs = %d, want 1 (the pin)", st.refs.Load())
	}
	st.release() // drain: this must close the old snapshot
	if st.refs.Load() != 0 {
		t.Fatalf("refs after drain = %d", st.refs.Load())
	}
	// The mapping is gone; the closeOnce ran. (Dereferencing the old index
	// now would fault, which TestHotSwapUnderLoad exercises statistically.)
	closed := false
	st.closeOnce.Do(func() { closed = true })
	if closed {
		t.Fatal("snapshot was not closed by the draining release")
	}
}

func TestStoreCloseRejectsQueries(t *testing.T) {
	srv := New(mustBuild(t, chainGraph(5, 0)), Options{})
	hts := httptest.NewServer(srv.Handler())
	defer hts.Close()
	if _, err := srv.QueryRLC(context.Background(), 0, 4, labelseq.Seq{0}); err != nil {
		t.Fatalf("pre-close query: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := srv.QueryRLC(context.Background(), 0, 4, labelseq.Seq{0}); err == nil {
		t.Fatal("query after Close succeeded")
	}
	resp, err := http.Get(hts.URL + "/query?s=0&t=4&l=l0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status after Close = %d, want 503", resp.StatusCode)
	}
}

// TestSwapAfterCloseStaysClosed pins the shutdown race: a reload that loses
// the race with Close must not resurrect the store, and the incoming
// snapshot must be released instead of leaking its mapping.
func TestSwapAfterCloseStaysClosed(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.rlcs")
	saveSnapshot(t, chainGraph(8, 0), path)

	store := NewStoreFromSnapshot(openSnapshot(t, path), Options{})
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	late := openSnapshot(t, path) // the SIGHUP that arrived too late
	store.SwapSnapshot(late)
	if st := store.acquire(); st != nil {
		st.release()
		t.Fatal("swap after Close resurrected the store")
	}
	if store.Generation() != 0 {
		t.Fatalf("generation after close = %d", store.Generation())
	}
	if late.Index() != nil {
		t.Fatal("late snapshot not closed; its mapping leaks")
	}
}

// TestCancellationDoesNotPoisonFlights pins the singleflight/context
// interaction: with the cache on, a flight leader computes detached from
// its own request's cancellation (a coalesced waiter with a healthy
// connection must still get an answer), while the cache-disabled path —
// where no one shares the result — honors cancellation.
func TestCancellationDoesNotPoisonFlights(t *testing.T) {
	g := chainGraph(6, 0)
	canceled, cancel := context.WithCancel(context.Background())
	cancel()

	cached := New(mustBuild(t, g), Options{})
	defer cached.Close()
	ok, _, err := cached.AnswerRLC(canceled, 0, 5, labelseq.Seq{0})
	if err != nil || !ok {
		t.Fatalf("cached path under canceled ctx: (%v, %v), want the shared answer (true, nil)", ok, err)
	}

	uncached := New(mustBuild(t, g), Options{CacheEntries: -1})
	defer uncached.Close()
	if _, _, err := uncached.AnswerRLC(canceled, 0, 5, labelseq.Seq{0}); !errors.Is(err, context.Canceled) {
		t.Fatalf("uncached path under canceled ctx: err = %v, want context.Canceled", err)
	}
}

func mustBuild(t testing.TB, g *graph.Graph) *core.Index {
	t.Helper()
	ix, err := core.Build(g, core.Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// TestReloadEndpoint drives the full hot-reload flow over HTTP: serve
// bundle A, rewrite the path with bundle B, POST /reload, and watch the
// answers and the generation counter flip with zero downtime.
func TestReloadEndpoint(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "serve.rlcs")
	saveSnapshot(t, chainGraph(12, 0), path)

	opts := Options{}
	opts.SnapshotSource = func() (*core.Snapshot, error) {
		snap, err := core.OpenSnapshot(path)
		if err != nil {
			return nil, err
		}
		if err := snap.Verify(); err != nil {
			snap.Close()
			return nil, err
		}
		return snap, nil
	}
	srv := NewFromSnapshot(openSnapshot(t, path), opts)
	defer srv.Close()
	hts := httptest.NewServer(srv.Handler())
	defer hts.Close()

	query := func() (bool, bool) {
		var qr queryResponse
		if code := getJSON(t, hts.URL+"/query?s=0&t=11&l=l0", &qr); code != http.StatusOK {
			t.Fatalf("query status %d", code)
		}
		var qr2 queryResponse
		if code := getJSON(t, hts.URL+"/query?s=0&t=11&l=l1", &qr2); code != http.StatusOK {
			t.Fatalf("query status %d", code)
		}
		return qr.Reachable, qr2.Reachable
	}
	if a, b := query(); !a || b {
		t.Fatalf("generation 1 answers (%v, %v), want (true, false)", a, b)
	}

	saveSnapshot(t, chainGraph(12, 1), path)
	resp, err := http.Post(hts.URL+"/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var rr reloadResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || rr.Generation != 2 {
		t.Fatalf("reload: status %d, generation %d", resp.StatusCode, rr.Generation)
	}
	if !strings.Contains(rr.Source, "serve.rlcs") {
		t.Fatalf("reload source %q", rr.Source)
	}
	if a, b := query(); a || !b {
		t.Fatalf("generation 2 answers (%v, %v), want (false, true)", a, b)
	}
	var st statsResponse
	getJSON(t, hts.URL+"/stats", &st)
	if st.Generation != 2 || !strings.Contains(st.Source, "serve.rlcs") {
		t.Fatalf("stats after reload: generation %d source %q", st.Generation, st.Source)
	}
}

// TestReloadUnconfigured pins the 501 for servers without a snapshot source.
func TestReloadUnconfigured(t *testing.T) {
	srv := New(mustBuild(t, chainGraph(5, 0)), Options{})
	defer srv.Close()
	hts := httptest.NewServer(srv.Handler())
	defer hts.Close()
	resp, err := http.Post(hts.URL+"/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("status = %d, want 501", resp.StatusCode)
	}
}

// TestErrorCodes pins the typed error codes on the wire: clients must be
// able to classify failures without parsing message text.
func TestErrorCodes(t *testing.T) {
	g := graph.Fig2()
	srv := New(mustBuild(t, g), Options{})
	defer srv.Close()
	hts := httptest.NewServer(srv.Handler())
	defer hts.Close()

	cases := []struct {
		name string
		url  string
		code string
	}{
		{"vertex range", hts.URL + "/query?s=0&t=99&l=l1", "vertex_range"},
		{"vertex range s", hts.URL + "/query?s=-1&t=0&l=l1", "vertex_range"},
	}
	for _, c := range cases {
		var e errorResponse
		if code := getJSON(t, c.url, &e); code != http.StatusBadRequest {
			t.Errorf("%s: status %d", c.name, code)
		}
		if e.Code != c.code {
			t.Errorf("%s: code %q, want %q (error: %s)", c.name, e.Code, c.code, e.Error)
		}
	}

	// Batch slots carry codes too.
	body := `{"queries":[{"s":0,"t":99,"l":"l1"},{"s":0,"t":1,"l":"l1 l1"}]}`
	resp, err := http.Post(hts.URL+"/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var br batchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(br.Results) != 2 {
		t.Fatalf("results: %+v", br.Results)
	}
	if br.Results[0].Code != "vertex_range" {
		t.Errorf("batch slot 0 code %q", br.Results[0].Code)
	}
	if br.Results[1].Code != "not_minimum_repeat" {
		t.Errorf("batch slot 1 code %q", br.Results[1].Code)
	}
	if errorCode(fmt.Errorf("wrapped: %w", context.Canceled)) != "canceled" {
		t.Error("canceled code lost through wrapping")
	}
}

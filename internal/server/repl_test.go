package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"testing"

	"github.com/g-rpqs/rlc-go/internal/core"
	"github.com/g-rpqs/rlc-go/internal/graph"
)

// replEdges builds n distinct-ish edges over the Fig. 2 vertex/label
// universe — valid inserts for a server built on graph.Fig2().
func replEdges(n, salt int) []graph.Edge {
	g := graph.Fig2()
	edges := make([]graph.Edge, n)
	for i := range edges {
		k := i + salt
		edges[i] = graph.Edge{
			Src:   graph.Vertex(k % g.NumVertices()),
			Dst:   graph.Vertex((k * 3) % g.NumVertices()),
			Label: graph.Label(k % g.NumLabels()),
		}
	}
	return edges
}

// TestHealthzShape pins the /healthz JSON contract the router's health
// poller depends on: the exact key set for both an immutable standalone
// server and a mutable leader. A key renamed or dropped here breaks
// deployed pollers, so the test fails on any drift — additions included.
func TestHealthzShape(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		keys []string
	}{
		{
			name: "immutable standalone",
			opts: Options{},
			keys: []string{"bundle_fingerprint", "generation", "journal_seq", "role", "status"},
		},
		{
			name: "mutable leader",
			opts: Options{Mutable: true, RebuildThreshold: -1, Role: "leader"},
			keys: []string{"bundle_fingerprint", "epoch", "generation", "journal", "journal_seq", "role", "status"},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, hts := newTestServer(t, buildIndex(t, graph.Fig2()), c.opts)
			resp, err := http.Get(hts.URL + "/healthz")
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var m map[string]any
			if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
				t.Fatalf("decode: %v", err)
			}
			got := make([]string, 0, len(m))
			for k := range m {
				got = append(got, k)
			}
			sort.Strings(got)
			if fmt.Sprint(got) != fmt.Sprint(c.keys) {
				t.Fatalf("healthz keys drifted:\n got %v\nwant %v", got, c.keys)
			}
			wantRole := "standalone"
			if c.opts.Role != "" {
				wantRole = c.opts.Role
			}
			if m["role"] != wantRole {
				t.Fatalf("role = %v, want %q", m["role"], wantRole)
			}
			if m["journal_seq"] != float64(0) {
				t.Fatalf("fresh server journal_seq = %v, want 0", m["journal_seq"])
			}
			if fp, _ := m["bundle_fingerprint"].(string); !strings.Contains(fp, ".") {
				t.Fatalf("bundle_fingerprint = %v, want a compact fingerprint", m["bundle_fingerprint"])
			}
		})
	}
}

// TestReplHeaders checks the consistency-token headers: queries carry a
// pre-compute freshness floor, updates carry a post-append write token,
// and the update token is immediately covered by the next query's floor.
func TestReplHeaders(t *testing.T) {
	srv, hts := newTestServer(t, buildIndex(t, graph.Fig2()), Options{Mutable: true, RebuildThreshold: -1})

	get := func(path string) *http.Response {
		t.Helper()
		resp, err := http.Get(hts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}
	resp := get("/query?s=0&t=4&l=l1")
	if e, q := resp.Header.Get(HeaderEpoch), resp.Header.Get(HeaderSeq); e != "0" || q != "0" {
		t.Fatalf("fresh query headers epoch=%q seq=%q, want 0/0", e, q)
	}

	body := strings.NewReader(`{"edges":[{"s":0,"l":"l1","t":4},{"s":1,"l":"l2","t":5}]}`)
	up, err := http.Post(hts.URL+"/update", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	var res UpdateResult
	if err := json.NewDecoder(up.Body).Decode(&res); err != nil {
		t.Fatalf("decode update: %v", err)
	}
	up.Body.Close()
	if up.StatusCode != http.StatusOK || res.Seq != 2 {
		t.Fatalf("update: status %d res %+v, want seq 2", up.StatusCode, res)
	}
	if q := up.Header.Get(HeaderSeq); q != "2" {
		t.Fatalf("update seq header %q, want 2 (post-append token)", q)
	}

	resp = get("/query?s=0&t=4&l=l1")
	if q := resp.Header.Get(HeaderSeq); q != "2" {
		t.Fatalf("query after update: seq floor %q, want 2", q)
	}
	if rs := srv.ReplState(); rs.Seq != 2 || rs.Epoch != 0 || rs.SeqBase != 0 {
		t.Fatalf("ReplState = %+v, want seq 2 epoch 0 base 0", rs)
	}
}

// TestExportSealed walks the segment-export contract end to end: nothing
// exports unsealed, the flush path force-seals a pending tail, a cursor
// past the log is a foreign log, and after a fold a cursor under the new
// base demands bundle cutover.
func TestExportSealed(t *testing.T) {
	srv, _ := newTestServer(t, buildIndex(t, graph.Fig2()), Options{Mutable: true, RebuildThreshold: -1})

	if _, _, err := srv.ExportSealed(5, false); err == nil || errorCode(err) != "foreign_log" {
		t.Fatalf("export past empty log: err %v, want foreign_log", err)
	}

	if _, err := srv.UpdateBatch(replEdges(33, 0)); err != nil {
		t.Fatal(err)
	}
	// The 33-edge batch crossed the 32-edge segment boundary, sealing the
	// whole batch in one piece (seal folds the entire pending tail).
	edges, rs, err := srv.ExportSealed(0, false)
	if err != nil || len(edges) != 33 {
		t.Fatalf("export sealed: %d edges, err %v (state %+v), want 33", len(edges), err, rs)
	}
	if rs.SealedSeq != 33 || rs.Seq != 33 {
		t.Fatalf("state after batch: %+v, want sealed=seq=33", rs)
	}

	// A sub-boundary trickle stays unsealed until a flushing export.
	if _, err := srv.UpdateBatch(replEdges(2, 7)); err != nil {
		t.Fatal(err)
	}
	edges, _, err = srv.ExportSealed(33, false)
	if err != nil || len(edges) != 0 {
		t.Fatalf("non-flush export of unsealed tail: %d edges, err %v, want 0", len(edges), err)
	}
	edges, rs, err = srv.ExportSealed(33, true)
	if err != nil || len(edges) != 2 || rs.SealedSeq != 35 {
		t.Fatalf("flush export: %d edges, err %v, state %+v; want 2 sealed to 35", len(edges), err, rs)
	}

	if _, err := srv.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := srv.ExportSealed(10, false); err == nil || errorCode(err) != "behind_bundle" {
		t.Fatalf("export under folded base: err %v, want behind_bundle", err)
	}
	if rs := srv.ReplState(); rs.Epoch != 1 || rs.SeqBase != 35 || rs.Seq != 35 {
		t.Fatalf("post-fold state %+v, want epoch 1, base=seq=35", rs)
	}
	if _, _, err := srv.ExportSealed(35, false); err != nil {
		t.Fatalf("export at the new base: %v, want empty success", err)
	}
}

// TestBundleAdoptRoundtrip drives one full epoch cutover by hand — the
// follower-side path the cluster package automates: the leader folds, the
// follower downloads the bundle bytes, verifies them, and adopts the
// leader's epoch. Afterwards both must agree on coordinates, fingerprint,
// and answers.
func TestBundleAdoptRoundtrip(t *testing.T) {
	g := graph.Fig2()
	leader, _ := newTestServer(t, buildIndex(t, g), Options{Mutable: true, RebuildThreshold: -1, Role: "leader"})
	follower, _ := newTestServer(t, buildIndex(t, g), Options{Mutable: true, RebuildThreshold: -1, Role: "follower"})

	batch := replEdges(40, 3)
	if _, err := leader.UpdateBatch(batch); err != nil {
		t.Fatal(err)
	}
	// Segment replication: the follower applies the leader's sealed log.
	edges, _, err := leader.ExportSealed(0, true)
	if err != nil || len(edges) != 40 {
		t.Fatalf("leader export: %d edges, err %v", len(edges), err)
	}
	if _, err := follower.UpdateBatch(edges); err != nil {
		t.Fatalf("follower apply: %v", err)
	}

	if _, err := leader.Rebuild(); err != nil {
		t.Fatal(err)
	}
	want := leader.ReplState()
	if want.Epoch != 1 || want.SeqBase != 40 {
		t.Fatalf("leader post-fold state %+v", want)
	}

	// Bundle cutover. Asking for a stale epoch must fail closed.
	if _, _, err := leader.BundleReader(0); err == nil || errorCode(err) != "epoch_gone" {
		t.Fatalf("stale-epoch bundle: err %v, want epoch_gone", err)
	}
	rc, brs, err := leader.BundleReader(want.Epoch)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(rc)
	rc.Close()
	if err != nil {
		t.Fatal(err)
	}
	snap, err := core.OpenSnapshotBytes(raw)
	if err != nil {
		t.Fatalf("open shipped bundle: %v", err)
	}
	if err := snap.Verify(); err != nil {
		t.Fatalf("verify shipped bundle: %v", err)
	}
	if fp := snap.Fingerprint().Compact(); fp != brs.Fingerprint {
		t.Fatalf("bundle fingerprint %s != handshake %s", fp, brs.Fingerprint)
	}
	frs := follower.ReplState()
	tail := edges[brs.SeqBase-frs.SeqBase:]
	if err := follower.AdoptFolded(snap, tail, brs.Epoch, brs.SeqBase, "adopted test bundle"); err != nil {
		t.Fatalf("adopt: %v", err)
	}

	got := follower.ReplState()
	if got.Epoch != want.Epoch || got.SeqBase != want.SeqBase || got.Seq != want.Seq ||
		got.Fingerprint != want.Fingerprint {
		t.Fatalf("follower state %+v diverges from leader %+v", got, want)
	}
	for s := 0; s < g.NumVertices(); s++ {
		for d := 0; d < g.NumVertices(); d++ {
			for l := 0; l < g.NumLabels(); l++ {
				lw, _, err1 := leader.AnswerRLC(t.Context(), graph.Vertex(s), graph.Vertex(d), []graph.Label{graph.Label(l)})
				fw, _, err2 := follower.AnswerRLC(t.Context(), graph.Vertex(s), graph.Vertex(d), []graph.Label{graph.Label(l)})
				if err1 != nil || err2 != nil {
					t.Fatalf("(%d,%d,l%d): errs %v %v", s, d, l, err1, err2)
				}
				if lw != fw {
					t.Fatalf("(%d,%d,l%d): leader %v follower %v", s, d, l, lw, fw)
				}
			}
		}
	}
}

// TestBodyTooLarge checks the request-body cap: oversized JSON on the
// write endpoints dies with 413 and the machine-readable code.
func TestBodyTooLarge(t *testing.T) {
	_, hts := newTestServer(t, buildIndex(t, graph.Fig2()),
		Options{Mutable: true, RebuildThreshold: -1, MaxBodyBytes: 64})
	big := `{"edges":[` + strings.Repeat(`{"s":0,"l":"l1","t":4},`, 20) + `{"s":0,"l":"l1","t":4}]}`
	for _, path := range []string{"/update", "/batch"} {
		resp, err := http.Post(hts.URL+path, "application/json", strings.NewReader(big))
		if err != nil {
			t.Fatal(err)
		}
		var er errorResponse
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
			t.Fatalf("%s: decode: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge || er.Code != "body_too_large" {
			t.Fatalf("%s: status %d code %q, want 413 body_too_large", path, resp.StatusCode, er.Code)
		}
	}
}

// TestFollowerRejectsClientWrites pins the role gate: HTTP writes on a
// follower answer 403 not_leader, while the Go-level apply path (what the
// replication loop uses) stays open.
func TestFollowerRejectsClientWrites(t *testing.T) {
	srv, hts := newTestServer(t, buildIndex(t, graph.Fig2()),
		Options{Mutable: true, RebuildThreshold: -1, Role: "follower"})
	for _, path := range []string{"/update", "/rebuild"} {
		resp, err := http.Post(hts.URL+path, "application/json",
			strings.NewReader(`{"s":0,"l":"l1","t":4}`))
		if err != nil {
			t.Fatal(err)
		}
		var er errorResponse
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
			t.Fatalf("%s: decode: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusForbidden || er.Code != "not_leader" {
			t.Fatalf("%s: status %d code %q, want 403 not_leader", path, resp.StatusCode, er.Code)
		}
	}
	if _, err := srv.UpdateBatch(replEdges(1, 0)); err != nil {
		t.Fatalf("Go-level apply on follower: %v", err)
	}
}

package server

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCacheHitMissEviction(t *testing.T) {
	c := newCache(4, 1) // one shard, four entries: eviction order is exact
	key := func(i int) cacheKey { return cacheKey{s: int32(i), t: int32(i), expr: "(l0)+"} }
	compute := func(val bool) func() (bool, error) {
		return func() (bool, error) { return val, nil }
	}

	for i := 0; i < 4; i++ {
		if _, cached, _ := c.do(key(i), 0, compute(i%2 == 0)); cached {
			t.Fatalf("first lookup of key %d reported cached", i)
		}
	}
	st := c.stats()
	if st.Misses != 4 || st.Hits != 0 || st.Entries != 4 || st.Evictions != 0 {
		t.Fatalf("after 4 cold lookups: %+v", st)
	}

	// All four are resident.
	for i := 0; i < 4; i++ {
		val, cached, err := c.do(key(i), 0, compute(false))
		if err != nil || !cached || val != (i%2 == 0) {
			t.Fatalf("key %d: val=%v cached=%v err=%v", i, val, cached, err)
		}
	}
	if st = c.stats(); st.Hits != 4 {
		t.Fatalf("after 4 warm lookups: %+v", st)
	}

	// Key 0 was touched most recently except 1..3; LRU order is 0,1,2,3 with
	// 3 most recent. Inserting key 4 must evict key 0.
	if _, cached, _ := c.do(key(4), 0, compute(true)); cached {
		t.Fatal("key 4 reported cached on first lookup")
	}
	st = c.stats()
	if st.Evictions != 1 || st.Entries != 4 {
		t.Fatalf("after eviction: %+v", st)
	}
	if _, cached, _ := c.do(key(0), 0, compute(true)); cached {
		t.Fatal("key 0 still cached after it should have been evicted")
	}
	if _, cached, _ := c.do(key(3), 0, compute(false)); !cached {
		t.Fatal("key 3 evicted although it was more recently used than key 0")
	}
}

func TestCacheErrorNotCached(t *testing.T) {
	c := newCache(8, 1)
	k := cacheKey{s: 1, t: 2, expr: "(l0)+"}
	wantErr := fmt.Errorf("transient")
	if _, _, err := c.do(k, 0, func() (bool, error) { return false, wantErr }); err != wantErr {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	if st := c.stats(); st.Entries != 0 {
		t.Fatalf("error was cached: %+v", st)
	}
	// The key still computes (and caches) after a failed attempt.
	val, cached, err := c.do(k, 0, func() (bool, error) { return true, nil })
	if err != nil || cached || !val {
		t.Fatalf("retry after error: val=%v cached=%v err=%v", val, cached, err)
	}
	if _, cached, _ = c.do(k, 0, func() (bool, error) { return false, nil }); !cached {
		t.Fatal("successful retry was not cached")
	}
}

// TestCacheSingleflight proves concurrent identical misses coalesce onto one
// computation: the first caller computes, the rest wait for its result.
func TestCacheSingleflight(t *testing.T) {
	c := newCache(8, 1)
	k := cacheKey{s: 7, t: 9, expr: "(l0,l1)+"}

	const waiters = 16
	var computes atomic.Int64
	gate := make(chan struct{})
	entered := make(chan struct{}, 1)

	var wg sync.WaitGroup
	results := make([]bool, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			val, _, err := c.do(k, 0, func() (bool, error) {
				entered <- struct{}{} // only the flight leader gets here
				<-gate
				computes.Add(1)
				return true, nil
			})
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
			}
			results[i] = val
		}(i)
	}

	<-entered // one goroutine is computing; let the rest pile up, then release
	close(gate)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	for i, v := range results {
		if !v {
			t.Fatalf("waiter %d got the wrong value", i)
		}
	}
	st := c.stats()
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1", st.Misses)
	}
	if st.Coalesced+st.Hits != waiters-1 {
		// Goroutines that reach the cache after the flight completes score
		// as hits; those that arrive during it score as coalesced.
		t.Fatalf("coalesced=%d hits=%d, want them to sum to %d", st.Coalesced, st.Hits, waiters-1)
	}
}

// TestCachePanicUnwedgesKey proves a panicking computation cannot wedge its
// key: a waiter coalesced onto the flight is unblocked with
// errComputePanicked, the panic propagates on the leader, and the key
// computes normally afterwards.
func TestCachePanicUnwedgesKey(t *testing.T) {
	c := newCache(8, 1)
	k := cacheKey{s: 3, t: 4, code: 9}

	entered := make(chan struct{})
	waiterErr := make(chan error, 1)
	go func() {
		<-entered
		_, _, err := c.do(k, 0, func() (bool, error) { return true, nil })
		waiterErr <- err
	}()

	func() {
		defer func() {
			if recover() == nil {
				t.Error("leader's panic did not propagate")
			}
		}()
		c.do(k, 0, func() (bool, error) {
			close(entered)
			// Let the waiter land in the flight map before panicking.
			time.Sleep(50 * time.Millisecond)
			panic("compute exploded")
		})
	}()

	// The waiter must come back — either coalesced onto the failed flight
	// or, if it lost the race, with its own successful compute.
	select {
	case err := <-waiterErr:
		if err != nil && err != errComputePanicked {
			t.Fatalf("waiter error = %v, want nil or errComputePanicked", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter still blocked: the panicked flight was never resolved")
	}

	// The key is not wedged: a fresh computation succeeds and caches.
	val, cached, err := c.do(k, 0, func() (bool, error) { return true, nil })
	if err != nil || !val {
		t.Fatalf("post-panic compute: val=%v cached=%v err=%v", val, cached, err)
	}
	if _, cached, _ = c.do(k, 0, func() (bool, error) { return false, nil }); !cached {
		t.Fatal("post-panic result was not cached")
	}
}

func TestCacheCapacityExact(t *testing.T) {
	cases := []struct{ entries, shards int }{
		{8, 32},    // fewer entries than shards: shard count must shrink
		{1000, 32}, // non-divisible split: remainder spread over shards
		{1, 1},
	}
	for _, tc := range cases {
		c := newCache(tc.entries, tc.shards)
		total := 0
		for i := range c.shards {
			if c.shards[i].cap < 1 {
				t.Errorf("newCache(%d, %d): shard %d has capacity %d", tc.entries, tc.shards, i, c.shards[i].cap)
			}
			total += c.shards[i].cap
		}
		if total != tc.entries {
			t.Errorf("newCache(%d, %d): shard capacities sum to %d", tc.entries, tc.shards, total)
		}
		if got := c.stats().Capacity; got != int64(tc.entries) {
			t.Errorf("newCache(%d, %d): reported capacity %d", tc.entries, tc.shards, got)
		}
	}
}

// TestCacheConcurrent hammers a small sharded cache from many goroutines
// with an overlapping keyspace so hits, misses, coalesced waits, and
// evictions all occur concurrently; run under -race this is the data-race
// proof for the serving path's only mutable state.
func TestCacheConcurrent(t *testing.T) {
	c := newCache(64, 4)
	const (
		goroutines = 8
		iters      = 2000
		keyspace   = 256 // 4x capacity: steady-state evictions guaranteed
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				id := (g*31 + i*7) % keyspace
				want := id%3 == 0
				val, _, err := c.do(cacheKey{s: int32(id), t: int32(id / 2), expr: "(l0)+"}, 0,
					func() (bool, error) { return want, nil })
				if err != nil {
					t.Errorf("goroutine %d iter %d: %v", g, i, err)
					return
				}
				if val != want {
					t.Errorf("goroutine %d iter %d: val=%v want %v", g, i, val, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	st := c.stats()
	if total := st.Hits + st.Misses + st.Coalesced; total != goroutines*iters {
		t.Fatalf("hits+misses+coalesced = %d, want %d (%+v)", total, goroutines*iters, st)
	}
	if st.Entries > st.Capacity {
		t.Fatalf("entries %d exceed capacity %d", st.Entries, st.Capacity)
	}
	if st.Evictions == 0 {
		t.Fatal("expected evictions with a keyspace 4x the capacity")
	}
}

// TestCacheVersioning pins the monotone validity rule: cached TRUE answers
// survive any version bump (inserts only add paths), cached FALSE answers
// are valid only at the version they were computed at, and a stale negative
// refreshes in place.
func TestCacheVersioning(t *testing.T) {
	c := newCache(8, 1)
	kf := cacheKey{s: 1, t: 2, code: 3}
	kt := cacheKey{s: 4, t: 5, code: 6}

	c.put(kf, 0, false)
	c.put(kt, 0, true)
	if _, ok := c.get(kf, 0); !ok {
		t.Fatal("false entry must hit at its own version")
	}
	if _, ok := c.get(kf, 1); ok {
		t.Fatal("false entry must miss after a version bump")
	}
	if v, ok := c.get(kt, 7); !ok || !v {
		t.Fatal("true entry must hit at any version")
	}

	// Refresh the stale negative at the new version (false -> false).
	c.put(kf, 1, false)
	if _, ok := c.get(kf, 1); !ok {
		t.Fatal("refreshed false entry must hit at the refresh version")
	}
	// A late stale compute must not regress a TRUE back to FALSE.
	c.put(kt, 0, false)
	if v, ok := c.get(kt, 9); !ok || !v {
		t.Fatal("stale false overwrite regressed a cached TRUE")
	}
	// do() at a newer version recomputes over a stale false and caches it.
	val, cached, err := c.do(kf, 2, func() (bool, error) { return true, nil })
	if err != nil || cached || !val {
		t.Fatalf("do over stale false: val=%v cached=%v err=%v", val, cached, err)
	}
	if v, ok := c.get(kf, 99); !ok || !v {
		t.Fatal("recomputed TRUE not resident")
	}
}
